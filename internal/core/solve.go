package core

import (
	"context"
	"fmt"

	"magiccounting/internal/obs"
)

// Options tunes a magic counting run.
type Options struct {
	// SCCStep1 replaces the recurring strategy's §9 bounded fixpoint
	// with the linear-time Tarjan variant the paper sketches. It only
	// affects Strategy == Recurring.
	SCCStep1 bool
	// Ctx, when non-nil, cancels the run: the Step 1 and Step 2
	// fixpoints poll it and return ctx.Err() instead of a result once
	// it is done. A nil Ctx disables cancellation entirely.
	Ctx context.Context
	// Workers sets the size of the worker pool sharding the counting
	// frontier rounds (Step 1 counting-set BFS, exit seeding, Step 2
	// descent). 0 or 1 runs sequentially; a negative value uses one
	// worker per CPU. Results and retrieval counts are identical to
	// the sequential run in every case.
	Workers int
	// ParallelThreshold is the minimum frontier size for a round to be
	// sharded across Workers; smaller frontiers run sequentially. 0
	// selects a sensible default.
	ParallelThreshold int
	// Trace, when non-nil and armed, receives the run's span tree:
	// Step 1 and Step 2 stage spans with per-round children, each
	// carrying its duration, the tuple retrievals it charged, and
	// frontier sizes. Tracing never charges the meter, so results and
	// retrieval counts are identical with and without it; disabled
	// (nil) it costs one nil check per stage or round boundary.
	Trace *obs.Trace
}

// SolveMagicCounting evaluates the query with the magic counting
// method selected by strategy and mode. All eight family members are
// correct and safe on every database (Theorems 1 and 2 plus
// Propositions 4–7).
func (q Query) SolveMagicCounting(strategy Strategy, mode Mode) (*Result, error) {
	return q.SolveMagicCountingOpts(strategy, mode, Options{})
}

// SolveMagicCountingCtx is SolveMagicCounting under a context: the
// run stops promptly with ctx.Err() when ctx is cancelled or times
// out, even mid-fixpoint.
func (q Query) SolveMagicCountingCtx(ctx context.Context, strategy Strategy, mode Mode) (*Result, error) {
	return q.SolveMagicCountingOpts(strategy, mode, Options{Ctx: ctx})
}

// SolveMagicCountingOpts is SolveMagicCounting with explicit options.
// It compiles the relations and runs once; callers issuing many
// queries against the same database should Compile once and use
// (*Compiled).Solve instead.
func (q Query) SolveMagicCountingOpts(strategy Strategy, mode Mode, opts Options) (*Result, error) {
	return compileTraced(q, opts.Trace).Solve(q.Source, strategy, mode, opts)
}

// compileTraced compiles a query's relations under a "compile" span,
// so one-shot traces show the build cost the serving path amortizes.
func compileTraced(q Query, tr *obs.Trace) *Compiled {
	bs := tr.Start("compile", 0)
	c := Compile(q.L, q.E, q.R)
	if bs != nil {
		bs.Set("l_nodes", int64(c.NumL()))
		bs.Set("r_nodes", int64(c.NumR()))
	}
	tr.End(bs, 0)
	return c
}

// Solve evaluates ?- P(source, Y) on the compiled instance with the
// magic counting method selected by strategy and mode. Binding the
// source is O(1); a source occurring in no relation yields the empty
// answer set at the same accounted cost as a fresh build. Solve is
// safe for concurrent use on one Compiled.
func (c *Compiled) Solve(source string, strategy Strategy, mode Mode, opts Options) (*Result, error) {
	in := c.bind(source)
	in.configure(opts)
	integrated := mode == Integrated
	s1 := in.tr.Start("step1/"+strategy.String(), in.retrievals)
	var rs *ReducedSets
	switch strategy {
	case Basic:
		rs = in.step1Basic(integrated)
	case Single:
		rs = in.step1Single(integrated)
	case Multiple:
		rs = in.step1Multiple(integrated)
	case Recurring:
		if opts.SCCStep1 {
			rs = in.step1RecurringSCC(integrated)
		} else {
			rs = in.step1RecurringNaive(integrated)
		}
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", strategy)
	}
	rm, rc := rs.counts()
	if s1 != nil {
		s1.Set("iterations", int64(rs.Iterations))
		s1.Set("rm", int64(rm))
		s1.Set("rc", int64(rc))
		if rs.Regular {
			s1.Set("regular", 1)
		}
	}
	in.tr.End(s1, in.retrievals)
	in.pollCtx()
	if in.stopped() {
		return nil, in.ctxErr
	}
	s2 := in.tr.Start("step2/"+mode.String(), in.retrievals)
	var answers *denseSet
	var iter int
	if integrated {
		answers, iter = in.solveIntegrated(rs)
	} else {
		answers, iter = in.solveIndependent(rs)
	}
	if s2 != nil {
		s2.Set("iterations", int64(iter))
		s2.Set("answers", int64(answers.size()))
	}
	in.tr.End(s2, in.retrievals)
	if in.stopped() {
		return nil, in.ctxErr
	}
	msSize := 0
	for _, inMS := range rs.MS {
		if inMS {
			msSize++
		}
	}
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals:      in.retrievals,
			Iterations:      rs.Iterations + iter,
			MagicSetSize:    msSize,
			CountingSetSize: rs.RC.pairs,
			RMSize:          rm,
			RCSize:          rc,
			Regular:         rs.Regular,
		},
	}, nil
}

// solveIndependent runs Step 2 of the independent methods (§4): the
// counting part seeded by RC and the magic part with exit rule
// restricted to RM but recursion over the full magic set, answers
// unioned.
func (in *instance) solveIndependent(rs *ReducedSets) (*denseSet, int) {
	answers, iter := in.countingDescent(rs.RC)
	rm := rs.rmList()
	if len(rm) > 0 {
		pm, mIter := in.magicPairs(rm, rs.MS, nil)
		iter += mIter
		for _, y := range pm.bySource(in.src) {
			answers.add(y)
		}
		pm.release()
	}
	return answers, iter
}

// solveIntegrated runs Step 2 of the integrated methods (§5): the
// magic part first, confined to RM, then the transfer rule
//
//	P_C(J, Y) :- RC(J, X), L(X, X1), P_M(X1, Y1), R(Y, Y1).
//
// moves its results into the counting descent, which alone produces
// the answer. Correctness relies on RM being closed under
// L-successors, an invariant of all four Step 1 constructions
// (successors of non-single nodes are non-single; successors of
// recurring nodes are recurring).
func (in *instance) solveIntegrated(rs *ReducedSets) (*denseSet, int) {
	iter := 0
	pc := newLevelSet()
	rm := rs.rmList()
	if len(rm) > 0 {
		// The transfer rule (§5, rule 3) rides along the magic part's
		// delta expansion: whenever a pair (x1, y1) is expanded and a
		// predecessor x lies in RC, one R step below y1 enters the
		// counting descent at each of x's indices. Sharing the L probe
		// with the recursive rule keeps rule 3's cost inside the magic
		// part's Θ bound, as the paper's analysis assumes.
		rcIdx := rs.rcIndexByNode()
		pm, mIter := in.magicPairs(rm, rs.RM, func(x, y1 int32) {
			levels := rcIdx[x]
			if len(levels) == 0 {
				return
			}
			in.charge(1 + int64(len(in.rOut(y1))))
			for _, y := range in.rOut(y1) {
				for _, j := range levels {
					pc.add(j, y)
				}
			}
		})
		pm.release()
		iter += mIter
	}
	// Counting exit rule over RC, then the shared descent.
	in.seedExit(pc, rs.RC)
	answers, dIter := in.descend(pc)
	return answers, iter + dIter
}
