package core

import (
	"fmt"

	"magiccounting/internal/graph"
)

// Strategy selects how Step 1 partitions the magic graph into the
// reduced counting set RC and the reduced magic set RM (§§6–9).
type Strategy uint8

const (
	// Basic: all-or-nothing. A regular magic graph gets RC = CS and
	// RM = ∅ (pure counting); any non-regular graph gets RM = MS.
	Basic Strategy = iota
	// Single: RC holds the single nodes below the first non-single
	// level i_x; RM holds everything from i_x up.
	Single
	// Multiple: RC holds exactly the single nodes; RM the multiple
	// and recurring ones.
	Multiple
	// Recurring: RC holds single and multiple nodes with their full
	// index sets; RM holds only the recurring nodes.
	Recurring
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Basic:
		return "basic"
	case Single:
		return "single"
	case Multiple:
		return "multiple"
	case Recurring:
		return "recurring"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Mode selects how Step 2 combines the counting and magic parts.
type Mode uint8

const (
	// Independent: the counting part (seeded by RC) and the magic part
	// (exit restricted to RM, recursion over all of MS) run separately
	// and their answers are unioned (§4).
	Independent Mode = iota
	// Integrated: the magic part runs first, confined to RM, and its
	// results are transferred into the counting descent at the RC/RM
	// boundary (§5, rule 3).
	Integrated
)

// String names the mode.
func (m Mode) String() string {
	if m == Integrated {
		return "integrated"
	}
	return "independent"
}

// ReducedSets is the outcome of Step 1: the partition the magic
// counting methods evaluate with.
type ReducedSets struct {
	// MS masks the full magic set over L-node ids.
	MS []bool
	// RM masks the reduced magic set.
	RM []bool
	// RC holds the reduced counting set as (index, node) pairs.
	RC *levelSet
	// Regular reports whether Step 1 saw only single nodes.
	Regular bool
	// Iterations counts Step 1 fixpoint rounds.
	Iterations int
}

// RCPair is one (index, node) member of the reduced counting set;
// Node indexes the name table returned by ReducedSetsFor.
type RCPair struct {
	Index int
	Node  int
}

// RCPairs lists the reduced counting set as (index, node) pairs in
// index order.
func (rs *ReducedSets) RCPairs() []RCPair {
	out := make([]RCPair, 0, rs.RC.pairs)
	for j := range rs.RC.levels {
		for _, v := range rs.RC.at(j) {
			out = append(out, RCPair{Index: j, Node: int(v)})
		}
	}
	return out
}

// rcIndexByNode inverts RC into per-node index lists (ascending).
func (rs *ReducedSets) rcIndexByNode() map[int32][]int {
	idx := make(map[int32][]int)
	for j := range rs.RC.levels {
		for _, v := range rs.RC.at(j) {
			idx[v] = append(idx[v], j)
		}
	}
	return idx
}

// rmList returns RM's members in id order.
func (rs *ReducedSets) rmList() []int32 {
	var out []int32
	for v, in := range rs.RM {
		if in {
			out = append(out, int32(v))
		}
	}
	return out
}

// counts returns |RM| and the number of RC pairs.
func (rs *ReducedSets) counts() (rm, rc int) {
	for _, in := range rs.RM {
		if in {
			rm++
		}
	}
	return rm, rs.RC.pairs
}

// flaggedBFS is the shared Step 1 fixpoint of the basic and single
// methods (§6): a breadth-first expansion of first occurrences only,
// recording for every node its first index and whether it was ever
// re-derived at a later level (the C = 2 flag). Cost Θ(m_L).
func (in *instance) flaggedBFS() (firstIdx []int, flagged []bool, ix int, iterations int) {
	n := in.nL
	firstIdx = make([]int, n)
	for i := range firstIdx {
		firstIdx[i] = -1
	}
	flagged = make([]bool, n)
	firstIdx[in.src] = 0
	level := []int32{in.src}
	ix = -1 // min first index of a flagged node; -1 = none flagged yet
	noteFlag := func(v int32) {
		if !flagged[v] {
			flagged[v] = true
			if ix == -1 || firstIdx[v] < ix {
				ix = firstIdx[v]
			}
		}
	}
	rt := roundTrace{in: in}
	for lvl := 0; len(level) > 0 && !in.stopped(); lvl++ {
		rt.begin(lvl, len(level))
		iterations++
		var next []int32
		for _, x := range level {
			in.charge(1 + int64(len(in.lOut(x))))
			for _, v := range in.lOut(x) {
				in.charge(1) // first-occurrence probe
				switch {
				case firstIdx[v] == -1:
					firstIdx[v] = lvl + 1
					next = append(next, v)
				case firstIdx[v] != lvl+1:
					// Re-derived at a strictly later level: the node
					// has two walk lengths, so it is not single.
					noteFlag(v)
				}
			}
		}
		level = next
	}
	rt.done()
	if ix == -1 {
		ix = n + 1 // regular: every level counts as below i_x
	}
	return firstIdx, flagged, ix, iterations
}

// msFromFirstIdx converts BFS first indices to a magic-set mask.
func msFromFirstIdx(firstIdx []int) []bool {
	ms := make([]bool, len(firstIdx))
	for v, d := range firstIdx {
		ms[v] = d >= 0
	}
	return ms
}

// step1Basic implements §6: detect any non-single node; use pure
// counting when none exists, pure magic otherwise.
func (in *instance) step1Basic(integrated bool) *ReducedSets {
	firstIdx, flagged, _, iters := in.flaggedBFS()
	rs := &ReducedSets{
		MS:         msFromFirstIdx(firstIdx),
		RM:         make([]bool, len(firstIdx)),
		RC:         newLevelSet(),
		Regular:    true,
		Iterations: iters,
	}
	for _, f := range flagged {
		if f {
			rs.Regular = false
			break
		}
	}
	if rs.Regular {
		for v, d := range firstIdx {
			if d >= 0 {
				rs.RC.add(d, int32(v))
			}
		}
		return rs
	}
	copy(rs.RM, rs.MS)
	if integrated {
		rs.RC.add(0, in.src)
	}
	return rs
}

// step1Single implements §7: i_x is the first level at which a
// non-single node occurs; everything strictly below it is single and
// goes to RC, the rest to RM.
func (in *instance) step1Single(integrated bool) *ReducedSets {
	firstIdx, flagged, ix, iters := in.flaggedBFS()
	rs := &ReducedSets{
		MS:         msFromFirstIdx(firstIdx),
		RM:         make([]bool, len(firstIdx)),
		RC:         newLevelSet(),
		Regular:    true,
		Iterations: iters,
	}
	for _, f := range flagged {
		if f {
			rs.Regular = false
			break
		}
	}
	for v, d := range firstIdx {
		switch {
		case d < 0:
			// unreachable
		case d < ix:
			rs.RC.add(d, int32(v))
		default:
			rs.RM[v] = true
		}
	}
	if integrated && rs.RC.pairs == 0 {
		rs.RC.add(0, in.src)
	}
	return rs
}

// step1Multiple implements §8: a bounded fixpoint that expands each
// node's first and second occurrences (at distinct levels) but never a
// third, terminating on cyclic graphs in Θ(m_L) while identifying
// exactly the non-single nodes.
func (in *instance) step1Multiple(integrated bool) *ReducedSets {
	n := in.nL
	idx1 := make([]int, n)
	idx2 := make([]int, n)
	for i := range idx1 {
		idx1[i], idx2[i] = -1, -1
	}
	idx1[in.src] = 0
	level := []int32{in.src}
	iterations := 0
	rt := roundTrace{in: in}
	for lvl := 0; len(level) > 0 && !in.stopped(); lvl++ {
		rt.begin(lvl, len(level))
		iterations++
		var next []int32
		for _, x := range level {
			in.charge(1 + int64(len(in.lOut(x))))
			for _, v := range in.lOut(x) {
				in.charge(1) // not(MS(_, 2, X1)) guard probe
				switch {
				case idx2[v] >= 0:
					// Third occurrence suppressed.
				case idx1[v] == -1:
					idx1[v] = lvl + 1
					next = append(next, v)
				case idx1[v] != lvl+1:
					idx2[v] = lvl + 1
					next = append(next, v)
				}
			}
		}
		level = next
	}
	rt.done()
	rs := &ReducedSets{
		MS:         make([]bool, n),
		RM:         make([]bool, n),
		RC:         newLevelSet(),
		Regular:    true,
		Iterations: iterations,
	}
	for v := 0; v < n; v++ {
		if idx1[v] < 0 {
			continue
		}
		rs.MS[v] = true
		if idx2[v] >= 0 {
			rs.RM[v] = true
			rs.Regular = false
		} else {
			rs.RC.add(idx1[v], int32(v))
		}
	}
	if integrated && rs.RC.pairs == 0 {
		rs.RC.add(0, in.src)
	}
	return rs
}

// step1RecurringNaive implements §9's algorithm verbatim: the full
// counting fixpoint bounded by index < 2K−1 (K = nodes seen so far).
// A node holding an index >= K is recurring; all other nodes keep
// their complete index sets in RC. Cost Θ(n_L·m_L).
func (in *instance) step1RecurringNaive(integrated bool) *ReducedSets {
	cs := newLevelSet()
	cs.add(0, in.src)
	seen := &denseSet{}
	seen.add(in.src)
	iterations := 0
	rt := roundTrace{in: in}
	for j := 0; len(cs.at(j)) > 0 && j < 2*seen.size()-1 && !in.stopped(); j++ {
		rt.begin(j, len(cs.at(j)))
		iterations++
		for _, x := range cs.at(j) {
			in.charge(1 + int64(len(in.lOut(x))))
			for _, x1 := range in.lOut(x) {
				in.charge(1) // level dedup probe
				if cs.add(j+1, x1) {
					seen.add(x1)
				}
			}
		}
	}
	rt.done()
	n := in.nL
	k := seen.size()
	rs := &ReducedSets{
		MS:         make([]bool, n),
		RM:         make([]bool, n),
		RC:         newLevelSet(),
		Regular:    true,
		Iterations: iterations,
	}
	for _, v := range seen.members() {
		rs.MS[v] = true
	}
	// RM(Y) :- CS(I, Y), I >= K.
	for j := k; j < len(cs.levels); j++ {
		for _, v := range cs.at(j) {
			rs.RM[v] = true
		}
	}
	for j := 0; j < len(cs.levels); j++ {
		for _, v := range cs.at(j) {
			if !rs.RM[v] {
				rs.RC.add(j, v)
			}
		}
	}
	for _, v := range seen.members() {
		if rs.RM[v] || len(multiIndices(cs, v)) > 1 {
			rs.Regular = false
			break
		}
	}
	if integrated && rs.RC.pairs == 0 {
		rs.RC.add(0, in.src)
	}
	return rs
}

// multiIndices collects the levels at which v occurs in cs.
func multiIndices(cs *levelSet, v int32) []int {
	var out []int
	for j := range cs.levels {
		if cs.levels[j].has(v) {
			out = append(out, j)
		}
	}
	return out
}

// step1RecurringSCC is the improved Step 1 the paper sketches at the
// end of §9: recurring nodes are found in linear time with Tarjan's
// SCC algorithm and the index enumeration is confined to the
// non-recurring subgraph, for cost O(m_L + n_m·m_m).
func (in *instance) step1RecurringSCC(integrated bool) *ReducedSets {
	g := in.lGraph()
	c := g.Classify(int(in.src))
	// Charge the SCC + reachability sweeps: linear in the nodes and
	// arcs of the source-reachable region. A Tarjan run over the
	// induced reachable subgraph retrieves exactly those rows (every
	// out-neighbor of a reachable node is reachable), so the method's
	// cost — like every other Step 1's — is confined to the query's
	// region and does not grow with unrelated parts of the database.
	var reachN, reachM int64
	for v := 0; v < g.N(); v++ {
		if c.Class[v] != graph.Unreachable {
			reachN++
			reachM += int64(len(g.Out(v)))
		}
	}
	in.charge(2 * (reachN + reachM))
	n := in.nL
	rs := &ReducedSets{
		MS:         make([]bool, n),
		RM:         make([]bool, n),
		RC:         newLevelSet(),
		Regular:    c.Regular,
		Iterations: 1,
	}
	for v := 0; v < n; v++ {
		switch c.Class[v] {
		case graph.Unreachable:
			continue
		case graph.Recurring:
			rs.MS[v] = true
			rs.RM[v] = true
		default:
			rs.MS[v] = true
			for _, j := range c.Indices[v] {
				in.charge(1) // index enumeration work
				rs.RC.add(j, int32(v))
			}
		}
	}
	if integrated && rs.RC.pairs == 0 {
		rs.RC.add(0, in.src)
	}
	return rs
}
