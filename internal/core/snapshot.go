package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"magiccounting/internal/graph"
)

// This file is the binary codec for the Compiled artifact, the piece
// of a durable snapshot that makes recovery cheap: the serving layer
// persists the interned symbol tables and the four CSR adjacency
// graphs alongside the raw fact slices, so a restart loads arrays
// instead of re-running Compile's map-heavy interning and arc
// deduplication. The encoding is uvarint-based and versionless on
// purpose — framing, checksums, and the format-version byte belong to
// the snapshot container (internal/durable), not to this payload.

// ErrBadArtifact reports a Compiled payload that fails structural
// validation (offsets out of range, arc ids past their domain).
var ErrBadArtifact = errors.New("core: malformed compiled artifact")

// AppendBinary serializes the artifact onto buf and returns the
// extended slice: generation, both symbol tables, then the four CSR
// graphs (offsets and arcs as uvarints; every value is non-negative).
// A delta-extended artifact is flattened through the same layout —
// snapshots never know (or care) how the artifact was built, and an
// encode/decode round trip of an extended artifact is exact.
func (c *Compiled) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, c.Generation)
	buf = appendStringTable(buf, c.lNames)
	buf = appendStringTable(buf, c.rNames)
	nL, nR := len(c.lNames), len(c.rNames)
	for _, gn := range []struct {
		g *csr
		n int
	}{{&c.lOut, nL}, {&c.lIn, nL}, {&c.eOut, nL}, {&c.rOut, nR}} {
		flat := gn.g.flatten(gn.n)
		buf = appendInt32s(buf, flat.off)
		buf = appendInt32s(buf, flat.arcs)
	}
	return buf
}

// DecodeCompiled decodes an artifact produced by AppendBinary from
// the front of data, returning the remaining bytes. The interning
// maps and the prebuilt magic graph are reconstructed from the
// decoded tables, so the result is behaviorally identical to the
// Compile output it was encoded from (per-node adjacency order is
// preserved by the CSR layout).
func DecodeCompiled(data []byte) (*Compiled, []byte, error) {
	r := &byteCursor{data: data}
	c := &Compiled{Generation: r.uvarint()}
	c.lNames = r.stringTable()
	c.rNames = r.stringTable()
	nL, nR := len(c.lNames), len(c.rNames)
	for i, g := range []*csr{&c.lOut, &c.lIn, &c.eOut, &c.rOut} {
		g.off = r.int32s()
		g.arcs = r.int32s()
		g.m = len(g.arcs)
		if r.err != nil {
			break
		}
		nodes, dom := nL, nL
		switch i {
		case 2: // eOut: L-node -> R-nodes
			nodes, dom = nL, nR
		case 3: // rOut: R-node -> R-nodes
			nodes, dom = nR, nR
		}
		if err := validateCSR(g, nodes, dom); err != nil {
			return nil, nil, err
		}
	}
	if r.err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadArtifact, r.err)
	}
	c.lid = make(map[string]int32, nL)
	for i, name := range c.lNames {
		c.lid[name] = int32(i)
	}
	c.rid = make(map[string]int32, nR)
	for i, name := range c.rNames {
		c.rid[name] = int32(i)
	}
	// Rebuild the prebuilt magic graph from the forward CSR: rows keep
	// the original per-node arc order, so classification sees the same
	// adjacency lists Compile built. The rows alias the CSR arc array
	// (full-capacity slices, so a later AddArc reallocates rather than
	// clobbering a neighbour row); validateCSR already established they
	// are duplicate-free enough for FromAdjacency's contract, since
	// Compile deduped them before encoding.
	rows := make([][]int32, nL)
	for u := 0; u < nL; u++ {
		lo, hi := c.lOut.off[u], c.lOut.off[u+1]
		rows[u] = c.lOut.arcs[lo:hi:hi]
	}
	c.lg = graph.FromAdjacency(rows)
	return c, r.rest(), nil
}

// validateCSR checks the structural invariants row() indexes by:
// len(off) == nodes+1, offsets non-decreasing and ending at
// len(arcs), and every arc id inside its domain. A corrupted payload
// must fail here, not panic in a solver.
func validateCSR(g *csr, nodes, domain int) error {
	if len(g.off) != nodes+1 {
		return fmt.Errorf("%w: %d offsets for %d nodes", ErrBadArtifact, len(g.off), nodes)
	}
	if nodes >= 0 && len(g.off) > 0 {
		if g.off[0] != 0 || int(g.off[nodes]) != len(g.arcs) {
			return fmt.Errorf("%w: offset bounds [%d..%d] over %d arcs", ErrBadArtifact, g.off[0], g.off[nodes], len(g.arcs))
		}
	}
	for i := 1; i < len(g.off); i++ {
		if g.off[i] < g.off[i-1] {
			return fmt.Errorf("%w: decreasing offset at node %d", ErrBadArtifact, i)
		}
	}
	for _, a := range g.arcs {
		if a < 0 || int(a) >= domain {
			return fmt.Errorf("%w: arc id %d outside domain %d", ErrBadArtifact, a, domain)
		}
	}
	return nil
}

func appendStringTable(buf []byte, names []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, s := range names {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func appendInt32s(buf []byte, vals []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, uint64(uint32(v)))
	}
	return buf
}

// byteCursor is a tiny error-latching reader over a byte slice; the
// first malformed field poisons every later read, so decode loops can
// check r.err once.
type byteCursor struct {
	data []byte
	off  int
	err  error
}

func (r *byteCursor) fail(msg string) {
	if r.err == nil {
		r.err = errors.New(msg)
	}
}

func (r *byteCursor) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *byteCursor) stringTable() []string {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("string table longer than payload")
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		l := r.uvarint()
		if r.err != nil || l > uint64(len(r.data)-r.off) {
			r.fail("truncated string")
			return nil
		}
		out = append(out, string(r.data[r.off:r.off+int(l)]))
		r.off += int(l)
	}
	return out
}

func (r *byteCursor) int32s() []int32 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("int32 run longer than payload")
		return nil
	}
	out := make([]int32, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		v := r.uvarint()
		if v > 1<<31-1 {
			r.fail("int32 out of range")
			return nil
		}
		out = append(out, int32(v))
	}
	return out
}

func (r *byteCursor) rest() []byte {
	return r.data[r.off:]
}
