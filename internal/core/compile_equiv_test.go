// Compile-equivalence suite: a shared *Compiled reused across many
// queries must be observationally identical to the one-shot Query
// path — same answers, same retrieval counts, same regime selection —
// for every method in the family, over workload generators spanning
// the Figure 3 regimes. This file lives in core_test (not core) so it
// can exercise the public API through the workload generators.
package core_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

// equivQueries spans the regimes: acyclic trees and DAGs (counting
// territory), cycles and lassos (recurring/magic territory), dense
// random instances, and a source interned in no relation (the virtual
// node path bind must get right).
func equivQueries() []struct {
	name string
	q    core.Query
} {
	out := []struct {
		name string
		q    core.Query
	}{
		{"tree", workload.Tree(3, 5)},
		{"chain", workload.Chain(24)},
		{"grid", workload.Grid(5, 5)},
		{"shortcut-chain", workload.ShortcutChain(20, 3)},
		{"lasso", workload.Lasso(6, 5)},
		{"cycle", workload.Cycle(9)},
		{"chord-cycle", workload.ChordCycle(8)},
		{"comb", workload.Comb(10)},
		{"dag", workload.RandomDAG(7, 4, 5, 0.3)},
	}
	for seed := int64(1); seed <= 4; seed++ {
		out = append(out, struct {
			name string
			q    core.Query
		}{fmt.Sprintf("random-%d", seed), workload.Random(seed, 18, 12)})
	}
	ghost := workload.Tree(2, 4)
	ghost.Source = "not-in-any-relation"
	out = append(out, struct {
		name string
		q    core.Query
	}{"virtual-source", ghost})
	return out
}

var equivStrategies = []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring}
var equivModes = []core.Mode{core.Independent, core.Integrated}

// checkSame compares a legacy-path and compiled-path outcome: errors
// must match exactly (the counting baselines return ErrUnsafe on
// cyclic instances) and Results must be deeply identical, Stats
// included.
func checkSame(t *testing.T, label string, legacy *core.Result, legacyErr error, compiled *core.Result, compiledErr error) {
	t.Helper()
	if (legacyErr == nil) != (compiledErr == nil) || (legacyErr != nil && legacyErr.Error() != compiledErr.Error()) {
		t.Errorf("%s: legacy err %v, compiled err %v", label, legacyErr, compiledErr)
		return
	}
	if legacyErr != nil {
		return
	}
	if !reflect.DeepEqual(legacy, compiled) {
		t.Errorf("%s: legacy %+v != compiled %+v", label, legacy, compiled)
	}
}

// TestCompileEquivalence runs every method — the eight magic counting
// strategy/mode combinations (plus the SCC recurring variant), both
// baselines, naive, and auto selection — through one shared Compiled
// per instance and through the one-shot Query wrappers, and demands
// byte-identical outcomes. The compiled path runs twice so the pooled
// scratch reuse between warm solves is covered too.
func TestCompileEquivalence(t *testing.T) {
	for _, tc := range equivQueries() {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.q
			c := core.Compile(q.L, q.E, q.R)
			for round := 0; round < 2; round++ {
				for _, s := range equivStrategies {
					for _, m := range equivModes {
						label := fmt.Sprintf("round %d %v/%v", round, s, m)
						legacy, lerr := q.SolveMagicCounting(s, m)
						compiled, cerr := c.Solve(q.Source, s, m, core.Options{})
						checkSame(t, label, legacy, lerr, compiled, cerr)
					}
				}
				legacy, lerr := q.SolveMagicCountingOpts(core.Recurring, core.Integrated, core.Options{SCCStep1: true})
				compiled, cerr := c.Solve(q.Source, core.Recurring, core.Integrated, core.Options{SCCStep1: true})
				checkSame(t, fmt.Sprintf("round %d recurring-scc", round), legacy, lerr, compiled, cerr)

				legacy, lerr = q.SolveCounting()
				compiled, cerr = c.SolveCounting(q.Source, core.Options{})
				checkSame(t, fmt.Sprintf("round %d counting", round), legacy, lerr, compiled, cerr)

				legacy, lerr = q.SolveCountingCyclic()
				compiled, cerr = c.SolveCountingCyclic(q.Source, core.Options{})
				checkSame(t, fmt.Sprintf("round %d counting-cyclic", round), legacy, lerr, compiled, cerr)

				legacy, lerr = q.SolveMagic()
				compiled, cerr = c.SolveMagic(q.Source)
				checkSame(t, fmt.Sprintf("round %d magic", round), legacy, lerr, compiled, cerr)

				legacy, lerr = q.SolveNaive()
				compiled, cerr = c.SolveNaive(q.Source)
				checkSame(t, fmt.Sprintf("round %d naive", round), legacy, lerr, compiled, cerr)
			}

			// Regime classification and auto selection agree end to end.
			if sel, csel := core.ChooseMethod(q), c.ChooseMethod(q.Source); !reflect.DeepEqual(sel, csel) {
				t.Errorf("selection: legacy %+v != compiled %+v", sel, csel)
			}
			ares, asel, aerr := q.SolveAuto(core.Options{})
			cres, cselr, cerr := c.SolveAuto(q.Source, core.Options{})
			checkSame(t, "auto", ares, aerr, cres, cerr)
			if !reflect.DeepEqual(asel, cselr) {
				t.Errorf("auto selection: legacy %+v != compiled %+v", asel, cselr)
			}
		})
	}
}

// TestCompileSharedConcurrent hammers one Compiled from many
// goroutines across sources and methods at once; every result must
// match the sequentially precomputed expectation. Run under -race this
// is the immutability claim of the compiled layer.
func TestCompileSharedConcurrent(t *testing.T) {
	q := workload.Tree(3, 5)
	c := core.Compile(q.L, q.E, q.R)
	sources := []string{"t0", "t1", "t4", "t13", "t40", "absent"}

	type key struct {
		src string
		s   core.Strategy
		m   core.Mode
	}
	want := make(map[key]*core.Result)
	for _, src := range sources {
		for _, s := range equivStrategies {
			for _, m := range equivModes {
				res, err := c.Solve(src, s, m, core.Options{})
				if err != nil {
					t.Fatalf("precompute %s %v/%v: %v", src, s, m, err)
				}
				want[key{src, s, m}] = res
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				src := sources[(w+i)%len(sources)]
				s := equivStrategies[(w+i)%len(equivStrategies)]
				m := equivModes[i%len(equivModes)]
				res, err := c.Solve(src, s, m, core.Options{})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if exp := want[key{src, s, m}]; !reflect.DeepEqual(res, exp) {
					t.Errorf("worker %d: %s %v/%v diverged: %+v != %+v", w, src, s, m, res, exp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
