package core

// reachableSet computes the magic set MS — the L-nodes reachable from
// the source — with the seminaive fixpoint of §2:
//
//	MS(a).
//	MS(X1) :- MS(X), L(X, X1), not MS(X1).
//
// Each node is expanded once, so the cost is Θ(m_L).
func (in *instance) reachableSet() []bool {
	ms := make([]bool, in.nL)
	ms[in.src] = true
	queue := []int32{in.src}
	for len(queue) > 0 && !in.stopped() {
		x := queue[0]
		queue = queue[1:]
		in.charge(1 + int64(len(in.lOut(x))))
		for _, x1 := range in.lOut(x) {
			in.charge(1) // not(MS(X1)) dedup probe
			if !ms[x1] {
				ms[x1] = true
				queue = append(queue, x1)
			}
		}
	}
	return ms
}

// pairSet stores the derived relation P_M as per-source sets of
// R-nodes. Sets obtained from pooledPairSet carry their pooled
// backing rows in pr and must be released after the pairs are read.
type pairSet struct {
	byX   []denseSet // indexed by L-node id
	count int
	pr    *pairRows // pooled backing storage; nil for unpooled sets
}

func newPairSet(nL int) *pairSet { return &pairSet{byX: make([]denseSet, nL)} }

// add inserts (x, y) and reports whether it was new.
func (p *pairSet) add(x, y int32) bool {
	if !p.byX[x].add(y) {
		return false
	}
	p.count++
	return true
}

// bySource returns the R-nodes paired with x, in derivation order
// (nil when x has none).
func (p *pairSet) bySource(x int32) []int32 { return p.byX[x].members() }

// magicPairs evaluates the modified rules of the magic set method
// seminaively:
//
//	P_M(X, Y) :- exit(X), E(X, Y).
//	P_M(X, Y) :- rec(X), L(X, X1), P_M(X1, Y1), R(Y, Y1).
//
// exit lists the nodes whose E arcs seed P_M (MS for the pure magic
// method, RM for magic counting methods); rec masks the nodes allowed
// as X in the recursive rule (MS for pure magic and independent
// methods, RM for integrated methods). It returns the P_M pairs and
// the number of delta rounds. The returned pairSet is pooled: the
// caller releases it once the pairs are consumed.
//
// Each derived pair (x1, y1) is expanded once: its L in-arcs and the
// R arcs below y1 are retrieved and every produced candidate pays a
// dedup probe, which is exactly the Θ(m_L·m_R) accounting of Table 1.
//
// boundary, when non-nil, is invoked for every in-arc predecessor x
// of an expanded pair that falls outside rec — the integrated
// methods' transfer rule (§5, rule 3) hooks in here, sharing the
// L-probe already paid by the recursive rule (the paper notes rule
// 3's cost is "already included in the cost of the magic set part").
func (in *instance) magicPairs(exit []int32, rec []bool, boundary func(x, y1 int32)) (*pairSet, int) {
	sp := in.tr.Start("magic", in.retrievals)
	pm := in.pooledPairSet()
	type pair struct{ x, y int32 }
	var work []pair
	push := func(x, y int32) {
		in.charge(1) // dedup probe on P_M
		if pm.add(x, y) {
			work = append(work, pair{x, y})
		}
	}
	for _, x := range exit {
		in.charge(1 + int64(len(in.eOut(x))))
		for _, y := range in.eOut(x) {
			push(x, y)
		}
	}
	iterations := 0
	for len(work) > 0 && !in.stopped() {
		iterations++
		x1y1 := work[len(work)-1]
		work = work[:len(work)-1]
		x1, y1 := x1y1.x, x1y1.y
		in.charge(1 + int64(len(in.lIn(x1)))) // L tuples entering x1
		for _, x := range in.lIn(x1) {
			if boundary != nil {
				// The transfer rule matches on RC membership, which
				// can overlap RM at the forced (0, a) pair, so it sees
				// every predecessor.
				boundary(x, y1)
			}
			if !rec[x] {
				continue
			}
			in.charge(1 + int64(len(in.rOut(y1)))) // R tuples below y1
			for _, y := range in.rOut(y1) {
				push(x, y)
			}
		}
	}
	if sp != nil {
		sp.Set("iterations", int64(iterations))
		sp.Set("exit_nodes", int64(len(exit)))
		sp.Set("pairs", int64(pm.count))
	}
	in.tr.End(sp, in.retrievals)
	return pm, iterations
}

// SolveMagic evaluates the query with the magic set method (program
// Q_M of §2): compute MS, then run the modified rules with MS gating
// both the exit and the recursive rule. Safe on every database; cost
// Θ(m_L·m_R) in all three regimes of Table 1.
func (q Query) SolveMagic() (*Result, error) {
	return Compile(q.L, q.E, q.R).SolveMagic(q.Source)
}

// SolveMagic runs the pure magic set method for one source on the
// compiled instance.
func (c *Compiled) SolveMagic(source string) (*Result, error) {
	in := c.bind(source)
	ms := in.reachableSet()
	var exit []int32
	msSize := 0
	for x, inMS := range ms {
		if inMS {
			msSize++
			exit = append(exit, int32(x))
		}
	}
	pm, iter := in.magicPairs(exit, ms, nil)
	answers := &denseSet{}
	for _, y := range pm.bySource(in.src) {
		answers.add(y)
	}
	pm.release()
	return &Result{
		Answers: in.answerNames(answers),
		Stats: Stats{
			Retrievals:   in.retrievals,
			Iterations:   iter,
			MagicSetSize: msSize,
		},
	}, nil
}

// SolveNaive computes the answer by naive bottom-up evaluation of the
// original program over all pairs, with no binding propagation at
// all. It always terminates (the pair space is finite) and serves as
// the semantic ground truth the other methods are validated against.
func (q Query) SolveNaive() (*Result, error) {
	return Compile(q.L, q.E, q.R).SolveNaive(q.Source)
}

// SolveNaive runs the naive bottom-up baseline for one source on the
// compiled instance.
func (c *Compiled) SolveNaive(source string) (*Result, error) {
	in := c.bind(source)
	p := in.pooledPairSet()
	type pair struct{ x, y int32 }
	var work []pair
	push := func(x, y int32) {
		in.charge(1)
		if p.add(x, y) {
			work = append(work, pair{x, y})
		}
	}
	// Exit rule over the whole E relation.
	for x := 0; x < in.nL; x++ {
		in.charge(1 + int64(len(in.eOut(int32(x)))))
		for _, y := range in.eOut(int32(x)) {
			push(int32(x), y)
		}
	}
	iterations := 0
	for len(work) > 0 {
		iterations++
		t := work[len(work)-1]
		work = work[:len(work)-1]
		in.charge(1 + int64(len(in.lIn(t.x))))
		for _, x := range in.lIn(t.x) {
			in.charge(1 + int64(len(in.rOut(t.y))))
			for _, y := range in.rOut(t.y) {
				push(x, y)
			}
		}
	}
	answers := &denseSet{}
	for _, y := range p.bySource(in.src) {
		answers.add(y)
	}
	p.release()
	return &Result{
		Answers: in.answerNames(answers),
		Stats:   Stats{Retrievals: in.retrievals, Iterations: iterations},
	}, nil
}
