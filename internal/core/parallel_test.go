package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// parWorkloads builds one query per magic-graph regime: regular (a
// tree), acyclic non-regular (a chain with shortcuts), and cyclic (a
// cycle with a tail), each with enough R-structure for a non-trivial
// descent.
func parWorkloads() map[string]Query {
	tree := Query{Source: nodeName(0)}
	next := 1
	frontier := []int{0}
	for d := 0; d < 6; d++ {
		var produced []int
		for _, p := range frontier {
			for c := 0; c < 2; c++ {
				tree.L = append(tree.L, P(nodeName(p), nodeName(next)))
				produced = append(produced, next)
				next++
			}
		}
		frontier = produced
	}
	shortcut := Query{Source: nodeName(0)}
	for i := 0; i < 120; i++ {
		shortcut.L = append(shortcut.L, P(nodeName(i), nodeName(i+1)))
		if i%3 == 0 && i+2 <= 120 {
			shortcut.L = append(shortcut.L, P(nodeName(i), nodeName(i+2)))
		}
	}
	cyc := Query{Source: nodeName(0)}
	for i := 0; i < 90; i++ {
		cyc.L = append(cyc.L, P(nodeName(i), nodeName((i+1)%90)))
	}
	out := make(map[string]Query)
	for name, q := range map[string]Query{"regular": tree, "acyclic": shortcut, "cyclic": cyc} {
		// Every L-node is its own generation peer and the R side is the
		// reversed L relation, so the descent has real work to do.
		for _, p := range q.L {
			q.E = append(q.E, P(p.From, p.From), P(p.To, p.To))
			q.R = append(q.R, P(p.To, p.From))
		}
		out[name] = q
	}
	return out
}

// parOpts forces sharding on every frontier: 8 workers with a
// threshold of 1 exercises the parallel path even on one-node levels.
var parOpts = Options{Workers: 8, ParallelThreshold: 1}

// Parallel frontier evaluation must be unobservable in the Result:
// same answers, same retrievals, same iterations, same set sizes.
func TestParallelSolversMatchSequential(t *testing.T) {
	for name, q := range parWorkloads() {
		t.Run(name, func(t *testing.T) {
			if name != "cyclic" {
				seq, err := q.SolveCounting()
				if err != nil {
					t.Fatal(err)
				}
				par, err := q.SolveCountingOpts(parOpts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("counting: sequential %+v, parallel %+v", seq, par)
				}
			}
			seqC, err := q.SolveCountingCyclic()
			if err != nil {
				t.Fatal(err)
			}
			parC, err := q.SolveCountingCyclicOpts(parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqC, parC) {
				t.Errorf("counting cyclic: sequential %+v, parallel %+v", seqC, parC)
			}
			for _, spec := range allMagicCountingSpecs() {
				seq, err := q.SolveMagicCounting(spec.Strategy, spec.Mode)
				if err != nil {
					t.Fatal(err)
				}
				opts := parOpts
				par, err := q.SolveMagicCountingOpts(spec.Strategy, spec.Mode, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%v/%v: sequential %+v, parallel %+v", spec.Strategy, spec.Mode, seq, par)
				}
			}
		})
	}
}

// The same equivalence on random queries, as a property.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		for _, spec := range allMagicCountingSpecs() {
			seq, err1 := q.SolveMagicCounting(spec.Strategy, spec.Mode)
			par, err2 := q.SolveMagicCountingOpts(spec.Strategy, spec.Mode, parOpts)
			if (err1 == nil) != (err2 == nil) {
				t.Logf("seed %d %v/%v: err %v vs %v", seed, spec.Strategy, spec.Mode, err1, err2)
				return false
			}
			if err1 == nil && !reflect.DeepEqual(seq, par) {
				t.Logf("seed %d %v/%v: %+v vs %+v", seed, spec.Strategy, spec.Mode, seq, par)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestShardRangeCoversAll(t *testing.T) {
	for n := 0; n < 40; n++ {
		for k := 1; k < 9; k++ {
			covered := 0
			prevHi := 0
			for s := 0; s < k; s++ {
				lo, hi := shardRange(n, k, s)
				if lo != prevHi {
					t.Fatalf("n=%d k=%d s=%d: gap, lo %d after hi %d", n, k, s, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d k=%d: covered %d, end %d", n, k, covered, prevHi)
			}
		}
	}
}
