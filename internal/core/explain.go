package core

import (
	"fmt"
	"io"
	"sort"

	"magiccounting/internal/graph"
)

// Explain runs a magic counting method and writes a human-readable
// account of every phase: the magic-graph classification, the Step 1
// partition with counting indices, the Step 2 plan, per-phase costs,
// and the answers. It is the teaching/debugging companion to
// SolveMagicCounting.
func Explain(w io.Writer, q Query, strategy Strategy, mode Mode) error {
	fmt.Fprintf(w, "magic counting: strategy=%s mode=%s source=%s\n", strategy, mode, q.Source)

	// Phase 0: the magic graph and its node classes.
	in := build(q)
	lg := in.lGraph()
	cls := lg.Classify(int(in.src))
	p := q.Params()
	fmt.Fprintf(w, "\nmagic graph: nL=%d mL=%d (reachable), R side: nR=%d mR=%d\n", p.NL, p.ML, p.NR, p.MR)
	switch {
	case p.Regular:
		fmt.Fprintln(w, "classification: regular — every node single; counting alone is safe and optimal")
	case p.Cyclic:
		fmt.Fprintln(w, "classification: cyclic — recurring nodes present; the pure counting method is UNSAFE here")
	default:
		fmt.Fprintln(w, "classification: acyclic non-regular — multiple nodes present, no cycles")
	}
	byClass := map[graph.Class][]string{}
	for v := 0; v < lg.N(); v++ {
		if cls.Class[v] != graph.Unreachable {
			byClass[cls.Class[v]] = append(byClass[cls.Class[v]], in.lName(int32(v)))
		}
	}
	for _, c := range []graph.Class{graph.Single, graph.Multiple, graph.Recurring} {
		names := byClass[c]
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(w, "  %-9s %v\n", c.String()+":", names)
		}
	}
	if !p.Regular {
		fmt.Fprintf(w, "  i_x = %d (first level with a non-single node)\n", p.IX)
	}

	// Phase 1: the reduced sets.
	rs, names, err := q.ReducedSetsFor(strategy, mode, Options{})
	if err != nil {
		return err
	}
	var rm []string
	for v, inRM := range rs.RM {
		if inRM {
			rm = append(rm, names[v])
		}
	}
	sort.Strings(rm)
	fmt.Fprintf(w, "\nstep 1 (%s): RM = %v\n", strategy, rm)
	pairs := rs.RCPairs()
	fmt.Fprintf(w, "           RC = %d (index, node) pairs:", len(pairs))
	for _, pr := range pairs {
		fmt.Fprintf(w, " (%d,%s)", pr.Index, names[pr.Node])
	}
	fmt.Fprintln(w)
	if err := CheckReducedSets(q, rs, mode); err != nil {
		fmt.Fprintf(w, "  WARNING: %v\n", err)
	} else {
		fmt.Fprintln(w, "  theorem conditions: RM ∪ RC = MS ✓, full index sets on RC−RM ✓"+
			map[bool]string{true: ", (0,source) ∈ RC ✓", false: ""}[mode == Integrated])
	}

	// Phase 2: the evaluation plan and run.
	if mode == Integrated {
		fmt.Fprintln(w, "\nstep 2 (integrated): magic part confined to RM; its results transfer into")
		fmt.Fprintln(w, "the counting descent at the RC boundary (rule 3); answers from P_C(0, Y) only")
	} else {
		fmt.Fprintln(w, "\nstep 2 (independent): counting part seeded by RC; magic part exits from RM")
		fmt.Fprintln(w, "with recursion over all of MS; the two answer sets are unioned")
	}
	res, err := q.SolveMagicCounting(strategy, mode)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nresult: %d answers in %d tuple retrievals, %d iterations\n",
		len(res.Answers), res.Stats.Retrievals, res.Stats.Iterations)
	fmt.Fprintf(w, "answers: %v\n", res.Answers)

	// Reference costs for context.
	if c, err := q.SolveCounting(); err == nil {
		fmt.Fprintf(w, "for comparison: counting %d retrievals", c.Stats.Retrievals)
	} else {
		fmt.Fprint(w, "for comparison: counting unsafe")
	}
	if m, err := q.SolveMagic(); err == nil {
		fmt.Fprintf(w, ", magic set %d retrievals\n", m.Stats.Retrievals)
	} else {
		fmt.Fprintln(w)
	}
	return nil
}
