package core

import (
	"bytes"
	"testing"
)

// TestCompiledEncodeDecodeRoundtrip: a decoded artifact must answer
// every method byte-identically to the artifact it was encoded from,
// including the retrieval meter (the CSR layout, per-node arc order,
// and symbol tables all survive the codec).
func TestCompiledEncodeDecodeRoundtrip(t *testing.T) {
	instances := []Query{
		SameGeneration([]Pair{P("a", "b"), P("a", "c"), P("b", "d"), P("c", "d"), P("d", "e")}, "a"),
		{
			L:      []Pair{P("a", "b"), P("b", "c"), P("c", "a"), P("b", "d")},
			E:      []Pair{P("d", "x"), P("a", "y"), P("c", "x")},
			R:      []Pair{P("y", "x"), P("x", "y"), P("z", "x")},
			Source: "a",
		},
		{Source: "ghost"}, // empty relations, virtual source
	}
	for qi, q := range instances {
		orig := Compile(q.L, q.E, q.R)
		orig.Generation = uint64(qi + 7)
		buf := orig.AppendBinary(nil)
		dec, rest, err := DecodeCompiled(append(buf, 0xAA, 0xBB)) // trailing bytes must survive
		if err != nil {
			t.Fatalf("instance %d: decode: %v", qi, err)
		}
		if !bytes.Equal(rest, []byte{0xAA, 0xBB}) {
			t.Fatalf("instance %d: rest = %v", qi, rest)
		}
		if dec.Generation != orig.Generation {
			t.Fatalf("instance %d: generation %d, want %d", qi, dec.Generation, orig.Generation)
		}
		if dec.NumL() != orig.NumL() || dec.NumR() != orig.NumR() {
			t.Fatalf("instance %d: domains (%d,%d), want (%d,%d)", qi, dec.NumL(), dec.NumR(), orig.NumL(), orig.NumR())
		}
		for _, s := range []Strategy{Basic, Single, Multiple, Recurring} {
			for _, m := range []Mode{Independent, Integrated} {
				want, err1 := orig.Solve(q.Source, s, m, Options{})
				got, err2 := dec.Solve(q.Source, s, m, Options{})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("instance %d %v/%v: errors diverge: %v vs %v", qi, s, m, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if len(want.Answers) != len(got.Answers) {
					t.Fatalf("instance %d %v/%v: %d answers, want %d", qi, s, m, len(got.Answers), len(want.Answers))
				}
				for i := range want.Answers {
					if want.Answers[i] != got.Answers[i] {
						t.Fatalf("instance %d %v/%v: answer[%d] = %q, want %q", qi, s, m, i, got.Answers[i], want.Answers[i])
					}
				}
				if want.Stats != got.Stats {
					t.Fatalf("instance %d %v/%v: stats %+v, want %+v", qi, s, m, got.Stats, want.Stats)
				}
			}
		}
		// Auto-selection consults the rebuilt magic graph: same choice.
		ws := orig.ChooseMethod(q.Source)
		gs := dec.ChooseMethod(q.Source)
		if ws.Strategy != gs.Strategy || ws.Mode != gs.Mode || ws.Regime != gs.Regime {
			t.Fatalf("instance %d: ChooseMethod diverged: %+v vs %+v", qi, gs, ws)
		}
	}
}

// TestDecodeCompiledRejectsCorrupt: truncations and out-of-domain arc
// ids must fail cleanly, never panic downstream.
func TestDecodeCompiledRejectsCorrupt(t *testing.T) {
	q := SameGeneration([]Pair{P("a", "b"), P("b", "c")}, "a")
	buf := Compile(q.L, q.E, q.R).AppendBinary(nil)
	for cut := 0; cut < len(buf); cut += 3 {
		if _, _, err := DecodeCompiled(buf[:cut]); err == nil {
			// A prefix may happen to parse only if it is the full
			// payload; any strict prefix that decodes is a bug.
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(buf))
		}
	}
}
