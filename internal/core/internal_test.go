package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"magiccounting/internal/graph"
)

func TestLevelSetBasics(t *testing.T) {
	s := newLevelSet()
	if s.maxLevel() != -1 {
		t.Fatal("empty set should have maxLevel -1")
	}
	if !s.add(2, 7) || s.add(2, 7) {
		t.Fatal("add dedupe wrong")
	}
	if !s.add(0, 1) || !s.add(2, 8) {
		t.Fatal("add failed")
	}
	if s.pairs != 3 {
		t.Fatalf("pairs = %d", s.pairs)
	}
	if !s.has(2, 7) || s.has(1, 7) || s.has(-1, 7) || s.has(99, 7) {
		t.Fatal("has wrong")
	}
	if len(s.at(2)) != 2 || len(s.at(1)) != 0 || s.at(-3) != nil || s.at(50) != nil {
		t.Fatal("at wrong")
	}
	if s.maxLevel() != 2 {
		t.Fatalf("maxLevel = %d", s.maxLevel())
	}
}

func TestPairSetBasics(t *testing.T) {
	p := newPairSet(3)
	if !p.add(0, 5) || p.add(0, 5) || !p.add(0, 6) || !p.add(2, 5) {
		t.Fatal("add dedupe wrong")
	}
	if p.count != 3 {
		t.Fatalf("count = %d", p.count)
	}
	if len(p.bySource(0)) != 2 || p.bySource(1) != nil {
		t.Fatal("bySource wrong")
	}
}

func TestBuildInternsSeparateDomains(t *testing.T) {
	q := Query{
		L:      []Pair{P("n", "m")},
		E:      []Pair{P("n", "n")}, // the value n occurs in both domains
		R:      []Pair{P("m", "n")},
		Source: "n",
	}
	in := build(q)
	if len(in.c.lNames) != 2 || in.nL != 2 {
		t.Fatalf("L domain = %v", in.c.lNames)
	}
	if len(in.c.rNames) != 2 {
		t.Fatalf("R domain = %v", in.c.rNames)
	}
	// Same constant, two nodes — the paper's "two distinct associated
	// nodes" requirement.
	if in.c.lNames[0] != "n" || in.c.rNames[0] != "n" {
		t.Fatalf("interning order wrong: %v / %v", in.c.lNames, in.c.rNames)
	}
}

func TestBuildDedupesFacts(t *testing.T) {
	q := Query{
		L:      []Pair{P("a", "b"), P("a", "b"), P("a", "b")},
		E:      []Pair{P("a", "x"), P("a", "x")},
		R:      []Pair{P("y", "x"), P("y", "x")},
		Source: "a",
	}
	in := build(q)
	if len(in.lOut(0)) != 1 || len(in.eOut(0)) != 1 {
		t.Fatal("duplicate facts not collapsed")
	}
	rx := int32(-1)
	for id, n := range in.c.rNames {
		if n == "x" {
			rx = int32(id)
		}
	}
	if len(in.rOut(rx)) != 1 {
		t.Fatal("duplicate R facts not collapsed")
	}
}

func TestFlaggedBFSOnDiamondDoesNotFlag(t *testing.T) {
	// Two equal-length paths re-derive d at the same level: no flag.
	q := Query{L: []Pair{P("a", "b"), P("a", "c"), P("b", "d"), P("c", "d")}, Source: "a"}
	in := build(q)
	_, flagged, _, _ := in.flaggedBFS()
	for v, f := range flagged {
		if f {
			t.Fatalf("node %s flagged on a regular diamond", in.lName(int32(v)))
		}
	}
}

func TestFlaggedBFSShortcutFlagsAndIX(t *testing.T) {
	q := Query{L: []Pair{P("a", "b"), P("b", "c"), P("a", "c"), P("c", "d")}, Source: "a"}
	in := build(q)
	firstIdx, flagged, ix, _ := in.flaggedBFS()
	var cID int32 = -1
	for v, n := range in.c.lNames {
		if n == "c" {
			cID = int32(v)
		}
	}
	if !flagged[cID] {
		t.Fatal("c should be flagged (distances 1 and 2)")
	}
	if ix != firstIdx[cID] {
		t.Fatalf("ix = %d, want first index of c (%d)", ix, firstIdx[cID])
	}
}

// Step 1 of every strategy classifies nodes consistently with the
// graph-package oracle on random magic graphs.
func TestStep1AgreesWithOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		in := build(q)
		oracle := in.lGraph().Classify(int(in.src))
		// Multiple method: RM = exactly the non-single reachable nodes.
		rsM := in.step1Multiple(false)
		for v := 0; v < in.nL; v++ {
			wantRM := oracle.Class[v] == graph.Multiple || oracle.Class[v] == graph.Recurring
			if rsM.RM[v] != wantRM {
				t.Logf("seed %d: multiple RM[%s] = %v, oracle %v", seed, in.lName(int32(v)), rsM.RM[v], oracle.Class[v])
				return false
			}
		}
		// Recurring method: RM = exactly the recurring nodes.
		in2 := build(q)
		rsR := in2.step1RecurringNaive(false)
		for v := 0; v < in2.nL; v++ {
			wantRM := oracle.Class[v] == graph.Recurring
			if rsR.RM[v] != wantRM {
				t.Logf("seed %d: recurring RM[%s] = %v, oracle %v", seed, in2.lName(int32(v)), rsR.RM[v], oracle.Class[v])
				return false
			}
		}
		// Recurring RC must carry complete index sets.
		for v := 0; v < in2.nL; v++ {
			if rsR.RM[v] || oracle.Class[v] == graph.Unreachable {
				continue
			}
			got := multiIndices(rsR.RC, int32(v))
			want := oracle.Indices[v]
			if len(got) != len(want) {
				t.Logf("seed %d: indices of %s = %v, want %v", seed, in2.lName(int32(v)), got, want)
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The basic/single shared BFS runs in O(m_L): the charge is linear in
// arcs even on cyclic graphs.
func TestFlaggedBFSLinearCost(t *testing.T) {
	for _, n := range []int{50, 100, 200} {
		q := Query{Source: nodeName(0)}
		for i := 0; i < n; i++ {
			q.L = append(q.L, P(nodeName(i), nodeName((i+1)%n)))
		}
		in := build(q)
		in.flaggedBFS()
		if in.retrievals > int64(6*n) {
			t.Fatalf("n=%d: flaggedBFS charged %d, want O(n)", n, in.retrievals)
		}
	}
}

// The multiple method's two-occurrence fixpoint also stays linear on
// cyclic graphs (each node expands at most twice).
func TestStep1MultipleLinearCostOnCycles(t *testing.T) {
	for _, n := range []int{50, 100, 200} {
		q := Query{Source: nodeName(0)}
		for i := 0; i < n; i++ {
			q.L = append(q.L, P(nodeName(i), nodeName((i+1)%n)))
		}
		in := build(q)
		in.step1Multiple(false)
		if in.retrievals > int64(10*n) {
			t.Fatalf("n=%d: step1Multiple charged %d, want O(n)", n, in.retrievals)
		}
	}
}

// The recurring naive Step 1 is superlinear (Θ(nL·mL)) on cycles —
// the cost the paper concedes and the SCC variant avoids.
func TestStep1RecurringNaiveSuperlinearOnCycles(t *testing.T) {
	// A cycle with a chord at every even node: each node then has
	// Θ(n) distinct walk lengths below the 2K−1 bound, so the counting
	// levels hold Θ(n) nodes each and the bounded fixpoint does
	// Θ(nL·mL) work (a pure cycle would keep one node per level).
	chordCycle := func(n int) Query {
		q := Query{Source: nodeName(0)}
		for i := 0; i < n; i++ {
			q.L = append(q.L, P(nodeName(i), nodeName((i+1)%n)))
			if i%2 == 0 && i+2 < n {
				q.L = append(q.L, P(nodeName(i), nodeName(i+2)))
			}
		}
		return q
	}
	cost := func(n int) int64 {
		in := build(chordCycle(n))
		in.step1RecurringNaive(false)
		return in.retrievals
	}
	c100, c200 := cost(100), cost(200)
	if c200 < 3*c100 {
		t.Fatalf("recurring naive Step 1 should grow superlinearly: %d -> %d", c100, c200)
	}
	sccCost := func(n int) int64 {
		in := build(chordCycle(n))
		in.step1RecurringSCC(false)
		return in.retrievals
	}
	if s200 := sccCost(200); s200 > c200/4 {
		t.Fatalf("SCC Step 1 (%d) should be far below naive (%d)", s200, c200)
	}
}

func TestWriteMagicGraphDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := fig2Query().WriteMagicGraphDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"magic_graph", `"a" -> "b"`, "salmon", "orange", "palegreen"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
