package core

import (
	"fmt"

	"magiccounting/internal/graph"
)

// This file is the delta-compilation layer: Extend patches a Compiled
// artifact with a fact delta instead of rebuilding it, the maintenance
// move the magic-set literature (Alviano et al.) justifies for fact
// insertion — derived structures indexed by source node stay valid
// for every node the delta does not reach, so only the touched rows
// need re-laying. Concretely:
//
//   - symbol tables grow append-only: new constants intern into a
//     small overlay map, the base maps (shared with the parent, which
//     concurrent queries may still be probing) are never rehashed;
//   - CSR adjacency is re-laid per row: only rows whose source node
//     carries a delta arc get fresh storage, every untouched row
//     aliases the parent's arc array, and a relation with no delta at
//     all aliases wholesale (its generation tag carries forward);
//   - the prebuilt magic graph is extended semi-naive-style: the
//     delta arcs' endpoints seed the patch frontier, and only their
//     adjacency rows (forward and reverse) are re-derived — the rest
//     of the graph is shared with the parent.
//
// The result compiles the same database as a cold Compile over the
// concatenated relations: identical up to the interning order of the
// delta's new symbols (Extend assigns them ids after every parent
// symbol; a cold build interleaves them in relation order), with
// per-row arc order preserved exactly. StructuralEqual checks that
// equivalence through the name bijection, and the equivalence tests
// and the mcbench -appendmix probe enforce it together with
// observational identity (same sorted answers, same Stats).

// DeltaDepth reports how many Extend steps separate this artifact
// from its last full Compile (0 for a cold-compiled or decoded one).
// Serving layers bound the chain: each step aliases the previous
// artifact's storage, so an unbounded chain would pin every
// generation's re-laid rows; a periodic full compile flattens it.
func (c *Compiled) DeltaDepth() int { return c.depth }

// RelationGenerations returns the per-relation generation tags: the
// Generation value at which each of L, E, and R last changed. An
// Extend whose delta leaves a relation untouched carries its tag
// forward unchanged.
func (c *Compiled) RelationGenerations() (l, e, r uint64) {
	return c.lGen, c.eGen, c.rGen
}

// Extend returns a new artifact covering the parent's relations plus
// the delta, reusing everything the delta does not touch. The parent
// is not modified and remains fully usable — in-flight queries keep
// evaluating it. The child's Generation is copied from the parent;
// callers that version artifacts stamp it afterwards, exactly as with
// Compile.
//
// Facts already present are ignored (relations are sets), matching
// Compile's deduplication, so Extend is idempotent over re-sent
// deltas. The cost is O(nodes) in slice-header copies plus O(delta)
// in real work — no hashing or sorting over the parent's facts.
func (c *Compiled) Extend(dL, dE, dR []Pair) *Compiled {
	child := &Compiled{
		Generation: c.Generation,
		lid:        c.lid,
		rid:        c.rid,
		lGen:       c.lGen,
		eGen:       c.eGen,
		rGen:       c.rGen,
		depth:      c.depth + 1,
	}
	// Cap-clamp the shared name tables so the first append reallocates
	// instead of growing into the parent's backing array (two siblings
	// extended from one parent must not clobber each other). The
	// overlay chains are shared outright: the parent's links are
	// immutable, and the child's first new symbol prepends a fresh one.
	child.lNames = c.lNames[:len(c.lNames):len(c.lNames)]
	child.rNames = c.rNames[:len(c.rNames):len(c.rNames)]
	child.lidOv = c.lidOv
	child.ridOv = c.ridOv

	internL := func(name string) int32 {
		if id, ok := lookupSym(child.lid, child.lidOv, name); ok {
			return id
		}
		id := int32(len(child.lNames))
		if child.lidOv == c.lidOv {
			child.lidOv = &symOv{prev: c.lidOv, m: make(map[string]int32, 4)}
		}
		child.lidOv.m[name] = id
		child.lNames = append(child.lNames, name)
		return id
	}
	internR := func(name string) int32 {
		if id, ok := lookupSym(child.rid, child.ridOv, name); ok {
			return id
		}
		id := int32(len(child.rNames))
		if child.ridOv == c.ridOv {
			child.ridOv = &symOv{prev: c.ridOv, m: make(map[string]int32, 4)}
		}
		child.ridOv.m[name] = id
		child.rNames = append(child.rNames, name)
		return id
	}

	// Intern and dedupe the delta, interleaved exactly as Compile
	// would over the concatenated relations (dL's symbols before dE's,
	// dE's before dR's), so ids — and therefore every downstream
	// structure — come out identical to a cold build. Deduplication
	// against the parent is a row scan: the delta is small by the
	// serving layer's threshold, and the scan avoids rebuilding the
	// arc-set maps Compile uses.
	lArcs := dedupeDelta(dL, &c.lOut, internL, internL, false)
	eArcs := dedupeDelta(dE, &c.eOut, internL, internR, false)
	// Descent arcs are stored reversed, like Compile: (b, c) lands in
	// row c as arc b.
	rArcs := dedupeDelta(dR, &c.rOut, internR, internR, true)

	nL, nR := len(child.lNames), len(child.rNames)
	if len(lArcs) > 0 {
		child.lOut = extendCSR(&c.lOut, nL, lArcs, false)
		child.lIn = extendCSR(&c.lIn, nL, lArcs, true)
	} else {
		child.lOut, child.lIn = c.lOut, c.lIn
	}
	if len(eArcs) > 0 {
		child.eOut = extendCSR(&c.eOut, nL, eArcs, false)
	} else {
		child.eOut = c.eOut
	}
	if len(rArcs) > 0 {
		child.rOut = extendCSR(&c.rOut, nR, rArcs, false)
	} else {
		child.rOut = c.rOut
	}

	// Magic graph: its arc set is exactly the deduplicated L relation,
	// so when the delta touched L the freshly laid lOut/lIn row tables
	// already ARE the patched adjacency — wrap them as a graph view
	// instead of re-laying the same rows a second time (lg is never
	// mutated after compilation, which is what makes the aliasing
	// sound). When only the node count grew (fresh L symbols interned
	// via dE, no L arcs), Digraph.Extend pads the parent's tables so
	// per-node classification arrays line up with the symbol table.
	if len(lArcs) > 0 {
		child.lg = graph.FromRows(child.lOut.rows, child.lIn.rows, child.lOut.m)
	} else if nL > c.lg.N() {
		child.lg = c.lg.Extend(nL-c.lg.N(), nil)
	} else {
		child.lg = c.lg
	}
	// Tag the relations the delta touched with the child's (parent's,
	// until the caller restamps) generation. The tags only need to be
	// distinct from the parent's when something changed; callers that
	// stamp Generation get exact per-relation versions via SetGeneration.
	if len(lArcs) > 0 {
		child.lGen = child.Generation + 1
	}
	if len(eArcs) > 0 {
		child.eGen = child.Generation + 1
	}
	if len(rArcs) > 0 {
		child.rGen = child.Generation + 1
	}
	return child
}

// SetGeneration stamps the artifact's generation and re-anchors the
// per-relation tags that were provisionally tagged by the last Extend
// (those equal to Generation+1 before the stamp). Serving layers call
// it instead of assigning Generation directly when they use the
// per-relation tags.
func (c *Compiled) SetGeneration(gen uint64) {
	next := c.Generation + 1
	if c.lGen == next {
		c.lGen = gen
	}
	if c.eGen == next {
		c.eGen = gen
	}
	if c.rGen == next {
		c.rGen = gen
	}
	c.Generation = gen
}

// dedupeDelta interns a delta's endpoints and returns its arcs with
// duplicates removed — against the parent graph (a row scan per arc)
// and within the delta itself. rev swaps each pair's endpoints before
// storing (the descent-graph convention). Interning runs on every
// pair, duplicates included, mirroring Compile.
func dedupeDelta(delta []Pair, parent *csr, internFrom, internTo func(string) int32, rev bool) []iarc {
	if len(delta) == 0 {
		return nil
	}
	arcs := make([]iarc, 0, len(delta))
	var seen map[iarc]bool
	for _, p := range delta {
		u, v := internFrom(p.From), internTo(p.To)
		if rev {
			u, v = v, u
		}
		a := iarc{u, v}
		if seen[a] || rowHas(parent.row(u), v) {
			continue
		}
		if seen == nil {
			seen = make(map[iarc]bool, len(delta))
		}
		seen[a] = true
		arcs = append(arcs, a)
	}
	return arcs
}

// rowHas reports whether row contains v.
func rowHas(row []int32, v int32) bool {
	for _, w := range row {
		if w == v {
			return true
		}
	}
	return false
}

// extendCSR lays the delta over a parent graph in per-row form over n
// nodes: untouched rows alias the parent's storage (cap-clamped, so
// they can never be grown in place), touched rows get fresh storage
// holding the parent row followed by the delta arcs in delta order —
// the same per-row order a cold build's stable counting sort
// produces. rev swaps each arc's endpoints (the reverse graph).
//
// Invariant: every row of a rows-form table has cap == len. A flat
// parent's rows are clamped as they are sliced out; an extended
// parent already satisfies it (its touched rows are re-clamped
// below), so a chained Extend bulk-copies the header table — the
// dominant per-step cost on a long chain — instead of re-clamping
// row by row.
func extendCSR(parent *csr, n int, arcs []iarc, rev bool) csr {
	rows := make([][]int32, n)
	if parent.rows != nil {
		copy(rows, parent.rows)
	} else {
		for i := 0; i+1 < len(parent.off); i++ {
			lo, hi := parent.off[i], parent.off[i+1]
			rows[i] = parent.arcs[lo:hi:hi]
		}
	}
	// Every row starts at cap == len, so the first append per touched
	// row copies it out of the shared storage and later appends grow
	// the private copy — copy-on-write without tracking touched sets.
	src := func(a iarc) int32 {
		if rev {
			return a.v
		}
		return a.u
	}
	for _, a := range arcs {
		s, d := a.u, a.v
		if rev {
			s, d = a.v, a.u
		}
		rows[s] = append(rows[s], d)
	}
	// Re-clamp the touched rows to restore the invariant for the next
	// link of the chain.
	for _, a := range arcs {
		s := src(a)
		row := rows[s]
		rows[s] = row[:len(row):len(row)]
	}
	return csr{rows: rows, m: parent.m + len(arcs)}
}

// flatten returns the graph in flat off/arcs form over n nodes,
// rebuilding the two arrays from the row table when the graph is
// delta-extended, and padding the offset table when the graph was
// aliased from a parent with fewer interned nodes (the delta added
// symbols but no arcs to this relation — trailing rows are empty,
// exactly as a cold build lays them). The snapshot codec serializes
// through it so a persisted extended artifact is byte-identical to
// the cold-compiled equivalent.
func (c *csr) flatten(n int) csr {
	if c.rows == nil {
		if len(c.off) == n+1 {
			return *c
		}
		off := make([]int32, n+1)
		copy(off, c.off)
		for i := len(c.off); i <= n; i++ {
			off[i] = int32(len(c.arcs))
		}
		return csr{off: off, arcs: c.arcs, m: c.m}
	}
	off := make([]int32, n+1)
	arcs := make([]int32, 0, c.m)
	for i := 0; i < n; i++ {
		arcs = append(arcs, c.row(int32(i))...)
		off[i+1] = int32(len(arcs))
	}
	return csr{off: off, arcs: arcs, m: len(arcs)}
}

// StructuralEqual reports whether two artifacts compile the same
// database: same symbol sets, same per-row adjacency (contents and
// order) in all four graphs, same magic graph — regardless of how
// either was built (cold Compile, Extend chain, or snapshot decode).
// The comparison runs through the name bijection, not raw ids: an
// Extend interns the delta's new symbols after every parent symbol,
// while a cold compile over the concatenated relations interleaves
// them in relation order, so equivalent artifacts agree only up to
// that permutation. Row contents are mapped through the bijection and
// compared in sequence (per-row arc order follows fact order, which
// concatenation preserves, so order-sensitive equality is exact).
// Generations are not compared. Returns nil when equivalent and a
// descriptive error naming the first divergence otherwise; the delta
// equivalence tests and the appendmix probe gate on it.
func (c *Compiled) StructuralEqual(o *Compiled) error {
	// The overlaid symbol lookup must agree with the tables on both
	// sides: every name resolves to its table index through either
	// path. With that established, same-length tables whose names all
	// resolve across artifacts form a bijection.
	for _, side := range []struct {
		tag     string
		a       *Compiled
		names   []string
		base    map[string]int32
		overlay *symOv
	}{
		{"L", c, c.lNames, c.lid, c.lidOv},
		{"R", c, c.rNames, c.rid, c.ridOv},
		{"L", o, o.lNames, o.lid, o.lidOv},
		{"R", o, o.rNames, o.rid, o.ridOv},
	} {
		for i, name := range side.names {
			if id, ok := lookupSym(side.base, side.overlay, name); !ok || id != int32(i) {
				return fmt.Errorf("core: %s symbol %q resolves to %d (ok=%v), table says %d", side.tag, name, id, ok, i)
			}
		}
	}
	oToCL, err := tableBijection("L", o.lNames, c.lNames, c.lid, c.lidOv)
	if err != nil {
		return err
	}
	oToCR, err := tableBijection("R", o.rNames, c.rNames, c.rid, c.ridOv)
	if err != nil {
		return err
	}
	// cToOL inverts oToCL so c's rows can be looked up on o's side.
	cToOL := invertIDs(oToCL)
	cToOR := invertIDs(oToCR)

	nL, nR := len(c.lNames), len(c.rNames)
	graphs := []struct {
		name       string
		a, b       *csr
		n          int
		srcO, dstO []int32 // c-id -> o-id for rows; o-id -> c-id for arcs
	}{
		{"lOut", &c.lOut, &o.lOut, nL, cToOL, oToCL},
		{"lIn", &c.lIn, &o.lIn, nL, cToOL, oToCL},
		{"eOut", &c.eOut, &o.eOut, nL, cToOL, oToCR},
		{"rOut", &c.rOut, &o.rOut, nR, cToOR, oToCR},
	}
	for _, g := range graphs {
		if g.a.m != g.b.m {
			return fmt.Errorf("core: %s arc count %d != %d", g.name, g.a.m, g.b.m)
		}
		for x := 0; x < g.n; x++ {
			ra, rb := g.a.row(int32(x)), g.b.row(g.srcO[x])
			if len(ra) != len(rb) {
				return fmt.Errorf("core: %s row %d: %d arcs != %d", g.name, x, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != g.dstO[rb[i]] {
					return fmt.Errorf("core: %s row %d arc %d: %d != %d (mapped)", g.name, x, i, ra[i], g.dstO[rb[i]])
				}
			}
		}
	}
	if c.lg.N() != o.lg.N() || c.lg.M() != o.lg.M() {
		return fmt.Errorf("core: magic graph %d nodes/%d arcs != %d/%d", c.lg.N(), c.lg.M(), o.lg.N(), o.lg.M())
	}
	for v := 0; v < c.lg.N(); v++ {
		ra, rb := c.lg.Out(v), o.lg.Out(int(cToOL[v]))
		if len(ra) != len(rb) {
			return fmt.Errorf("core: magic graph row %d: %d arcs != %d", v, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != oToCL[rb[i]] {
				return fmt.Errorf("core: magic graph row %d arc %d: %d != %d (mapped)", v, i, ra[i], oToCL[rb[i]])
			}
		}
	}
	return nil
}

// tableBijection maps each id of the names table into the (base,
// overlay) symbol maps of the other artifact, failing when a name is
// missing or the table sizes differ — same length plus total
// resolution of unique names is a bijection.
func tableBijection(tag string, names, otherNames []string, base map[string]int32, overlay *symOv) ([]int32, error) {
	if len(names) != len(otherNames) {
		return nil, fmt.Errorf("core: %s-table size %d != %d", tag, len(otherNames), len(names))
	}
	out := make([]int32, len(names))
	for id, name := range names {
		cid, ok := lookupSym(base, overlay, name)
		if !ok {
			return nil, fmt.Errorf("core: %s symbol %q present in one artifact only", tag, name)
		}
		out[id] = cid
	}
	return out, nil
}

// invertIDs inverts a bijection represented as a slice.
func invertIDs(m []int32) []int32 {
	out := make([]int32, len(m))
	for i, v := range m {
		out[v] = int32(i)
	}
	return out
}
