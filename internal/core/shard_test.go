// Region-sharding equivalence suite: a ShardedCompiled must be
// observationally indistinguishable from the monolithic Compiled over
// the same database — byte-identical Results (Stats included) for
// every method and SolveAuto, across seeded regime instances, merged
// multi-region databases, append/Extend chains, bridging appends that
// force shard merges, and per-shard retention swaps. A fuzz target
// extends the search over region mixes, shard counts, and splits.
package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/workload"
)

// prefixQuery renames every symbol of q with the given prefix so
// instances can be merged into one database with disjoint regions.
func prefixQuery(q core.Query, prefix string) core.Query {
	ren := func(pairs []core.Pair) []core.Pair {
		out := make([]core.Pair, len(pairs))
		for i, p := range pairs {
			out[i] = core.Pair{From: prefix + p.From, To: prefix + p.To}
		}
		return out
	}
	return core.Query{
		L:      ren(q.L),
		E:      ren(q.E),
		R:      ren(q.R),
		Source: prefix + q.Source,
	}
}

// multiRegion merges `regions` seeded instances (cycling through the
// regime kinds) under distinct prefixes: one database, `regions`
// disjoint weak components, one query source per region.
func multiRegion(seed int64, regions, size int) (core.Query, []string) {
	kinds := []workload.RegimeKind{
		workload.KindRegular, workload.KindCyclicRegular,
		workload.KindMultiple, workload.KindRecurring,
	}
	var whole core.Query
	var sources []string
	for i := 0; i < regions; i++ {
		q := prefixQuery(workload.RandomRegime(kinds[i%len(kinds)], seed+int64(i), size), fmt.Sprintf("g%d:", i))
		whole.L = append(whole.L, q.L...)
		whole.E = append(whole.E, q.E...)
		whole.R = append(whole.R, q.R...)
		sources = append(sources, q.Source)
	}
	whole.Source = sources[0]
	return whole, sources
}

// checkShardedSame demands sharded and monolithic artifacts agree on
// every method, the SCC Step-1 variant, and SolveAuto (selection
// included) for each source.
func checkShardedSame(t *testing.T, label string, mono *core.Compiled, sc *core.ShardedCompiled, sources []string) {
	t.Helper()
	for _, src := range sources {
		for _, s := range equivStrategies {
			for _, m := range equivModes {
				want, werr := mono.Solve(src, s, m, core.Options{})
				got, gerr := sc.Solve(src, s, m, core.Options{})
				checkSame(t, fmt.Sprintf("%s src=%s %v/%v", label, src, s, m), want, werr, got, gerr)
			}
		}
		want, werr := mono.Solve(src, core.Recurring, core.Integrated, core.Options{SCCStep1: true})
		got, gerr := sc.Solve(src, core.Recurring, core.Integrated, core.Options{SCCStep1: true})
		checkSame(t, fmt.Sprintf("%s src=%s recurring/scc", label, src), want, werr, got, gerr)

		wres, wsel, werr := mono.SolveAuto(src, core.Options{})
		gres, gsel, gerr := sc.SolveAuto(src, core.Options{})
		checkSame(t, fmt.Sprintf("%s src=%s auto", label, src), wres, werr, gres, gerr)
		if werr == nil && !reflect.DeepEqual(wsel, gsel) {
			t.Errorf("%s src=%s: auto selection diverged: %+v != %+v", label, src, wsel, gsel)
		}
	}
}

// TestCompileShardedAgainstMonolithic covers single-instance databases
// across every regime kind and a spread of shard counts (K=1 is the
// degenerate single-shard case).
func TestCompileShardedAgainstMonolithic(t *testing.T) {
	kinds := []struct {
		name string
		kind workload.RegimeKind
	}{
		{"regular", workload.KindRegular},
		{"cyclic-regular", workload.KindCyclicRegular},
		{"multiple", workload.KindMultiple},
		{"recurring", workload.KindRecurring},
	}
	for _, k := range kinds {
		for seed := int64(1); seed <= 2; seed++ {
			q := workload.RandomRegime(k.kind, seed, 3)
			mono := core.Compile(q.L, q.E, q.R)
			sources := []string{q.Source, "absent-from-everything"}
			if len(q.L) > 0 {
				sources = append(sources, q.L[len(q.L)/2].To)
			}
			for _, shards := range []int{1, 2, 4} {
				sc := core.CompileSharded(q.L, q.E, q.R, core.ShardOpts{Shards: shards})
				if got := sc.NumShards(); got != shards {
					t.Fatalf("%s/seed=%d: NumShards = %d, want %d", k.name, seed, got, shards)
				}
				checkShardedSame(t, fmt.Sprintf("%s/seed=%d/k=%d", k.name, seed, shards), mono, sc, sources)
			}
		}
	}
}

// TestCompileShardedMultiRegion is the sharding-proper case: several
// disjoint regions spread across shards, every region's source
// answered identically, facts conserved across the partition, and L
// arcs never split across shards.
func TestCompileShardedMultiRegion(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		whole, sources := multiRegion(seed*100, 6, 2)
		mono := core.Compile(whole.L, whole.E, whole.R)
		for _, shards := range []int{1, 3, 4, 16} {
			sc := core.CompileSharded(whole.L, whole.E, whole.R, core.ShardOpts{Shards: shards})
			label := fmt.Sprintf("seed=%d/k=%d", seed, shards)
			total := 0
			for _, slot := range sc.LiveSlots() {
				total += sc.ShardFacts(slot)
			}
			if want := len(whole.L) + len(whole.E) + len(whole.R); total != want {
				t.Fatalf("%s: shards hold %d facts, database has %d", label, total, want)
			}
			for _, p := range whole.L {
				if sc.ShardOf(p.From) != sc.ShardOf(p.To) {
					t.Fatalf("%s: L arc (%s,%s) split across shards %d and %d",
						label, p.From, p.To, sc.ShardOf(p.From), sc.ShardOf(p.To))
				}
			}
			checkShardedSame(t, label, mono, sc, append(sources, "absent-from-everything"))
		}
	}
}

// shardedAppendChain drives base+delta splits of a multi-region
// database through a sharded Extend chain, checking each step against
// both the cold monolithic compile and the running invariants of
// ShardExtendStats.
func TestShardedExtendEquivalence(t *testing.T) {
	whole, sources := multiRegion(7, 4, 2)
	rng := rand.New(rand.NewSource(7))
	for _, shards := range []int{2, 4} {
		for _, maxFrac := range []float64{0.25, 0} {
			label := fmt.Sprintf("k=%d/frac=%.2f", shards, maxFrac)
			base, rest := splitQuery(whole, 0.5, 0.5, 0.5)
			sc := core.CompileSharded(base.L, base.E, base.R, core.ShardOpts{Shards: shards})
			accL := append([]core.Pair(nil), base.L...)
			accE := append([]core.Pair(nil), base.E...)
			accR := append([]core.Pair(nil), base.R...)
			steps := 4
			for i := 0; i < steps; i++ {
				lo := func(p []core.Pair) []core.Pair {
					k := len(p) / steps
					if i == steps-1 {
						return p[i*k:]
					}
					return p[i*k : (i+1)*k]
				}
				dL, dE, dR := lo(rest.L), lo(rest.E), lo(rest.R)
				next, stats := sc.Extend(dL, dE, dR, maxFrac)
				next.SetGeneration(sc.Generation + 1)
				if len(dL)+len(dE)+len(dR) > 0 && len(stats.Touched) == 0 {
					t.Fatalf("%s step %d: non-empty delta touched no shard", label, i)
				}
				if maxFrac <= 0 && stats.DeltaExtended != 0 {
					t.Fatalf("%s step %d: delta path used with delta compilation disabled", label, i)
				}
				accL = append(accL, dL...)
				accE = append(accE, dE...)
				accR = append(accR, dR...)
				mono := core.Compile(accL, accE, accR)
				srcs := append(append([]string(nil), sources...), "absent-from-everything")
				if len(dL) > 0 {
					srcs = append(srcs, dL[len(dL)-1].To)
				}
				checkShardedSame(t, fmt.Sprintf("%s step %d", label, i), mono, next, srcs)
				// The parent must stay usable (in-flight queries hold it).
				if _, err := sc.Solve(sources[rng.Intn(len(sources))], core.Basic, core.Integrated, core.Options{}); err != nil {
					t.Fatalf("%s step %d: parent broken after Extend: %v", label, i, err)
				}
				sc = next
			}
		}
	}
}

// TestShardedBridgingMerge pins the merge policy: an append connecting
// two regions that live in different shards must merge them (into the
// lower slot), reroute both regions there, and keep answers
// byte-identical to the monolithic artifact.
func TestShardedBridgingMerge(t *testing.T) {
	whole, sources := multiRegion(13, 2, 2)
	sc := core.CompileSharded(whole.L, whole.E, whole.R, core.ShardOpts{Shards: 2})
	s0, s1 := sc.ShardOf(sources[0]), sc.ShardOf(sources[1])
	if s0 == s1 {
		t.Fatalf("regions packed into one shard (%d): bridging case not exercised", s0)
	}
	bridge := []core.Pair{{From: sources[0], To: sources[1]}}
	next, stats := sc.Extend(bridge, nil, nil, 0.25)
	if stats.Merges != 1 {
		t.Fatalf("bridging append reported %d merges, want 1", stats.Merges)
	}
	if got := len(next.LiveSlots()); got != 1 {
		t.Fatalf("%d live slots after merge, want 1", got)
	}
	lo := s0
	if s1 < lo {
		lo = s1
	}
	if next.ShardOf(sources[0]) != lo || next.ShardOf(sources[1]) != lo {
		t.Fatalf("merged regions route to shards %d and %d, want both %d",
			next.ShardOf(sources[0]), next.ShardOf(sources[1]), lo)
	}
	mono := core.Compile(append(append([]core.Pair(nil), whole.L...), bridge...), whole.E, whole.R)
	checkShardedSame(t, "post-merge", mono, next, append(sources, "absent-from-everything"))
	// The pre-merge parent still answers from the old partition.
	checkShardedSame(t, "pre-merge parent", core.Compile(whole.L, whole.E, whole.R), sc, sources)
}

// TestShardedRetentionSwap covers the per-shard retention hook: a
// shard's chain collapses via Flatten + SetShardArtifact without
// touching the other shards or any answer.
func TestShardedRetentionSwap(t *testing.T) {
	whole, sources := multiRegion(29, 3, 2)
	base, delta := splitQuery(whole, 0.6, 0.6, 0.6)
	sc := core.CompileSharded(base.L, base.E, base.R, core.ShardOpts{Shards: 3})
	next, stats := sc.Extend(delta.L, delta.E, delta.R, 0.9)
	if stats.DeltaExtended == 0 {
		t.Fatal("expected at least one delta-extended shard")
	}
	if next.MaxDeltaDepth() == 0 {
		t.Fatal("extend chain left no depth to collapse")
	}
	for _, slot := range next.LiveSlots() {
		if next.ShardArtifact(slot).DeltaDepth() > 0 {
			next.SetShardArtifact(slot, next.ShardArtifact(slot).Flatten())
		}
	}
	if next.MaxDeltaDepth() != 0 {
		t.Fatalf("MaxDeltaDepth = %d after collapsing every shard", next.MaxDeltaDepth())
	}
	mono := core.Compile(whole.L, whole.E, whole.R)
	checkShardedSame(t, "post-collapse", mono, next, append(sources, "absent-from-everything"))
	infos := next.ShardInfos()
	if len(infos) != len(next.LiveSlots()) {
		t.Fatalf("ShardInfos has %d entries, %d live slots", len(infos), len(next.LiveSlots()))
	}
	for _, info := range infos {
		if info.DeltaDepth != 0 || info.ResidentBytes <= 0 {
			t.Fatalf("slot %d: depth=%d resident=%d after collapse", info.Slot, info.DeltaDepth, info.ResidentBytes)
		}
	}
}

// TestShardedGeneration pins the stamping contract: CompileSharded
// returns generation zero and SetGeneration stamps only the top level.
func TestShardedGeneration(t *testing.T) {
	q := workload.RandomRegime(workload.KindRegular, 3, 2)
	sc := core.CompileSharded(q.L, q.E, q.R, core.ShardOpts{Shards: 2})
	if sc.Generation != 0 {
		t.Fatalf("fresh sharded artifact has generation %d", sc.Generation)
	}
	sc.SetGeneration(17)
	if sc.Generation != 17 {
		t.Fatalf("SetGeneration left %d", sc.Generation)
	}
	next, _ := sc.Extend(nil, nil, nil, 0.25)
	if next.Generation != 17 {
		t.Fatalf("Extend dropped the parent generation: %d", next.Generation)
	}
	if sc.ResidentBytes() <= 0 {
		t.Fatal("sharded ResidentBytes not positive")
	}
}

// FuzzShardedAgainstMonolithic searches regime mixes, shard counts,
// and base/delta splits for any observable divergence between the
// sharded and monolithic artifacts.
func FuzzShardedAgainstMonolithic(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(128))
	f.Add(int64(9), uint8(4), uint8(1), uint8(0))
	f.Add(int64(42), uint8(16), uint8(4), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, shards, regions, split uint8) {
		k := int(shards%16) + 1
		whole, sources := multiRegion(seed, int(regions%4)+1, 2)
		frac := float64(split) / 255
		base, delta := splitQuery(whole, frac, frac, frac)
		sc := core.CompileSharded(base.L, base.E, base.R, core.ShardOpts{Shards: k})
		next, _ := sc.Extend(delta.L, delta.E, delta.R, 0.25)
		mono := core.Compile(whole.L, whole.E, whole.R)
		for _, src := range append(sources, "absent-from-everything") {
			want, werr := mono.Solve(src, core.Multiple, core.Integrated, core.Options{})
			got, gerr := next.Solve(src, core.Multiple, core.Integrated, core.Options{})
			checkSame(t, fmt.Sprintf("src=%s multiple/integrated", src), want, werr, got, gerr)
			wres, wsel, werr := mono.SolveAuto(src, core.Options{})
			gres, gsel, gerr := next.SolveAuto(src, core.Options{})
			checkSame(t, fmt.Sprintf("src=%s auto", src), wres, werr, gres, gerr)
			if werr == nil && !reflect.DeepEqual(wsel, gsel) {
				t.Errorf("src=%s: auto selection diverged: %+v != %+v", src, wsel, gsel)
			}
		}
	})
}
