package core

import (
	"errors"
	"reflect"
	"testing"
)

// Minimized differential-regression instances, one per Figure-3
// regime family of the oracle sweep (internal/oracle). The expected
// answer sets are hand-computed from Fact 2 and cross-checked by the
// oracle's two independent evaluators; pinning them here keeps the
// tier-1 suite honest even without the oracle package on the test
// path. Every solver the package exports must produce exactly these
// sets.
var oracleRegressions = []struct {
	name    string
	q       Query
	regime  Regime
	answers []string
}{
	{
		name: "regular chain",
		// k=0 crosses a->w; k=1 reaches b, crosses to x, one G_R
		// step x->y (R pair (y,x)).
		q: Query{
			L:      []Pair{P("a", "b")},
			E:      []Pair{P("b", "x"), P("a", "w")},
			R:      []Pair{P("y", "x")},
			Source: "a",
		},
		regime:  RegimeRegular,
		answers: []string{"w", "y"},
	},
	{
		name: "cyclic but regular",
		// The u<->v cycle reaches the source but is unreachable from
		// it, so the magic graph stays regular.
		q: Query{
			L:      []Pair{P("a", "b"), P("u", "v"), P("v", "u"), P("v", "a")},
			E:      []Pair{P("b", "x")},
			R:      []Pair{P("y", "x")},
			Source: "a",
		},
		regime:  RegimeRegular,
		answers: []string{"y"},
	},
	{
		name: "multiple via skip arc",
		// c is reachable at lengths 1 (skip) and 2 (chain): the k=1
		// witness descends one G_R step to y, the k=2 witness two
		// steps to z.
		q: Query{
			L:      []Pair{P("a", "b"), P("b", "c"), P("a", "c")},
			E:      []Pair{P("c", "x")},
			R:      []Pair{P("y", "x"), P("z", "y")},
			Source: "a",
		},
		regime:  RegimeAcyclic,
		answers: []string{"y", "z"},
	},
	{
		name: "recurring two-cycle",
		// Even k sits at a and crosses to x; the G_R two-cycle
		// returns to x after any even number of steps. Odd k sits at
		// b with no E arc. Infinitely many walk lengths, one answer.
		q: Query{
			L:      []Pair{P("a", "b"), P("b", "a")},
			E:      []Pair{P("a", "x")},
			R:      []Pair{P("y", "x"), P("x", "y")},
			Source: "a",
		},
		regime:  RegimeCyclic,
		answers: []string{"x"},
	},
}

// TestOracleRegressionsAllMethods pins the minimized instances across
// every method: the eight strategy/mode combinations, the magic-set
// and naive baselines, cyclic counting, and automatic selection.
func TestOracleRegressionsAllMethods(t *testing.T) {
	strategies := []Strategy{Basic, Single, Multiple, Recurring}
	modes := []Mode{Independent, Integrated}
	for _, tc := range oracleRegressions {
		t.Run(tc.name, func(t *testing.T) {
			if got := ChooseMethod(tc.q).Regime; got != tc.regime {
				t.Fatalf("regime = %s, want %s", got, tc.regime)
			}
			for _, st := range strategies {
				for _, m := range modes {
					res, err := tc.q.SolveMagicCounting(st, m)
					if err != nil {
						t.Fatalf("%s/%s: %v", st, m, err)
					}
					if !reflect.DeepEqual(res.Answers, tc.answers) {
						t.Errorf("%s/%s: answers %v, want %v", st, m, res.Answers, tc.answers)
					}
				}
			}
			for name, solve := range map[string]func() (*Result, error){
				"magic":           tc.q.SolveMagic,
				"naive":           tc.q.SolveNaive,
				"counting-cyclic": tc.q.SolveCountingCyclic,
			} {
				res, err := solve()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !reflect.DeepEqual(res.Answers, tc.answers) {
					t.Errorf("%s: answers %v, want %v", name, res.Answers, tc.answers)
				}
			}
			res, _, err := tc.q.SolveAuto(Options{})
			if err != nil {
				t.Fatalf("auto: %v", err)
			}
			if !reflect.DeepEqual(res.Answers, tc.answers) {
				t.Errorf("auto: answers %v, want %v", res.Answers, tc.answers)
			}
			// Pure counting is safe exactly when the magic graph is
			// acyclic (Theorem: cyclic regime makes counting unsafe).
			cres, err := tc.q.SolveCounting()
			if tc.regime == RegimeCyclic {
				if !errors.Is(err, ErrUnsafe) {
					t.Errorf("counting on cyclic regime: err = %v, want ErrUnsafe", err)
				}
			} else {
				if err != nil {
					t.Fatalf("counting: %v", err)
				}
				if !reflect.DeepEqual(cres.Answers, tc.answers) {
					t.Errorf("counting: answers %v, want %v", cres.Answers, tc.answers)
				}
			}
		})
	}
}
