package core

import (
	"runtime"
	"sync"
)

// defaultParallelThreshold is the frontier size below which a round
// runs sequentially even when workers are available: sharding a
// handful of nodes costs more in goroutine handoff than it saves.
const defaultParallelThreshold = 128

// shardRange splits n items into k contiguous shards and returns the
// bounds of shard s. Remainder items go to the leading shards, so
// sizes differ by at most one.
func shardRange(n, k, s int) (lo, hi int) {
	q, r := n/k, n%k
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// resolveWorkers normalizes an Options.Workers value: 0 means
// sequential, negative means one worker per CPU.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.NumCPU()
	}
	return w
}

// expandLevel is one frontier round of a counting-style fixpoint:
// for every node x of frontier, charge 1 + len(adj[x]) retrievals
// (the semijoin probe plus the produced arcs) and insert adj[x] into
// level toLevel of dest. With workers, the frontier is sharded: each
// worker sums its charges and collects the successors that a
// read-only probe does not already find in the target level, and the
// merge applies shard outputs in shard order. The merged charge total
// and the resulting level contents — including their order — are
// exactly those of the sequential loop, because per-node charges are
// position-independent and the merge re-runs the same deduplicating
// adds in the same sequence. No retrieval is charged for dedup probes
// here, matching the sequential accounting.
func (in *instance) expandLevel(dest *levelSet, frontier []int32, adj *csr, toLevel int) {
	w := in.workers
	if w > 1 {
		t := in.parThreshold
		if t <= 0 {
			t = defaultParallelThreshold
		}
		if w > len(frontier)/t {
			w = len(frontier) / t
		}
	}
	if w <= 1 {
		for _, x := range frontier {
			row := adj.row(x)
			in.charge(1 + int64(len(row)))
			for _, v := range row {
				dest.add(toLevel, v)
			}
		}
		return
	}
	type shardOut struct {
		charge int64
		cand   []int32
		_      [40]byte // pad to a cache line so shards don't false-share
	}
	outs := make([]shardOut, w)
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		lo, hi := shardRange(len(frontier), w, s)
		wg.Add(1)
		go func(o *shardOut, shard []int32) {
			defer wg.Done()
			for _, x := range shard {
				row := adj.row(x)
				o.charge += 1 + int64(len(row))
				for _, v := range row {
					// Read-only pre-filter against the state all
					// workers see (no add runs during this phase):
					// drops the bulk of the duplicates off the
					// single-threaded merge.
					if !dest.has(toLevel, v) {
						o.cand = append(o.cand, v)
					}
				}
			}
		}(&outs[s], frontier[lo:hi])
	}
	wg.Wait()
	for s := range outs {
		in.charge(outs[s].charge)
		for _, v := range outs[s].cand {
			dest.add(toLevel, v)
		}
	}
}
