package core

import (
	"fmt"

	"magiccounting/internal/graph"
)

// CheckReducedSets validates the correctness conditions of Theorem 1
// (independent) or Theorem 2 (integrated) for a reduced-set pair
// against the query's true node classification:
//
//	a) RM ∪ RC₋ᵢ = MS,
//	b) for each b in RC₋ᵢ − RM, RI_b = I_b (the full index set), and
//	c) (integrated only) the pair (0, a) is in RC.
//
// It returns nil when all conditions hold. It is exported so tests and
// examples can demonstrate that the conditions are exactly the
// boundary of correctness.
func CheckReducedSets(q Query, rs *ReducedSets, mode Mode) error {
	in := build(q)
	lg := in.lGraph()
	cls := lg.Classify(int(in.src))

	// Condition a: the partition covers the magic set exactly.
	inRC := make([]bool, in.nL)
	for j := range rs.RC.levels {
		for _, v := range rs.RC.at(j) {
			inRC[v] = true
		}
	}
	for v := 0; v < in.nL; v++ {
		reachable := cls.Class[v] != graph.Unreachable
		covered := rs.RM[v] || inRC[v]
		if reachable && !covered {
			return fmt.Errorf("core: condition (a) violated: magic node %s in neither RM nor RC", in.lName(int32(v)))
		}
		if !reachable && covered {
			return fmt.Errorf("core: condition (a) violated: %s is not a magic node but appears in RM or RC", in.lName(int32(v)))
		}
	}

	// Condition b: RC-only nodes carry their complete index sets.
	for v := 0; v < in.nL; v++ {
		if !inRC[v] || rs.RM[v] {
			continue
		}
		if cls.Class[v] == graph.Recurring {
			return fmt.Errorf("core: condition (b) violated: recurring node %s assigned to RC only (infinite index set)", in.lName(int32(v)))
		}
		want := cls.Indices[v]
		got := multiIndices(rs.RC, int32(v))
		if len(got) != len(want) {
			return fmt.Errorf("core: condition (b) violated: node %s has indices %v in RC, wants %v", in.lName(int32(v)), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("core: condition (b) violated: node %s has indices %v in RC, wants %v", in.lName(int32(v)), got, want)
			}
		}
	}

	// Condition c: integrated methods must seed the descent at (0, a).
	if mode == Integrated && !rs.RC.has(0, in.src) {
		return fmt.Errorf("core: condition (c) violated: (0, %s) missing from RC", q.Source)
	}
	return nil
}

// ReducedSetsFor runs Step 1 of the chosen strategy on the query and
// returns the resulting partition, for inspection and testing.
func (q Query) ReducedSetsFor(strategy Strategy, mode Mode, opts Options) (*ReducedSets, []string, error) {
	in := build(q)
	integrated := mode == Integrated
	var rs *ReducedSets
	switch strategy {
	case Basic:
		rs = in.step1Basic(integrated)
	case Single:
		rs = in.step1Single(integrated)
	case Multiple:
		rs = in.step1Multiple(integrated)
	case Recurring:
		if opts.SCCStep1 {
			rs = in.step1RecurringSCC(integrated)
		} else {
			rs = in.step1RecurringNaive(integrated)
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown strategy %v", strategy)
	}
	return rs, in.lNamesFull(), nil
}

// RMClosedUnderSuccessors verifies the invariant the integrated
// methods rely on: every L-successor of an RM node is again in RM.
func RMClosedUnderSuccessors(q Query, rs *ReducedSets) error {
	in := build(q)
	for v := range rs.RM {
		if !rs.RM[v] {
			continue
		}
		for _, w := range in.lOut(int32(v)) {
			if !rs.RM[w] {
				return fmt.Errorf("core: RM not successor-closed: %s in RM but successor %s is not",
					in.lName(int32(v)), in.lName(w))
			}
		}
	}
	return nil
}
