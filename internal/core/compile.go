package core

import (
	"sync"

	"magiccounting/internal/graph"
)

// This file holds the compiled-instance layer: the build-once,
// share-everywhere artifact behind every solver entry point. The
// paper's workload is many bound queries ?- P(a, Y) against one
// slowly-changing database, and the magic-sets literature treats the
// EDB as a compiled, indexed artifact reused across goal invocations;
// Compile is that artifact. A Compiled is immutable after
// construction, so any number of concurrent queries may share one.

// csr is one adjacency graph in compressed sparse row form: the arcs
// of node x occupy arcs[off[x]:off[x+1]]. One flat arc array plus one
// offset array per graph replaces the per-node [][]int32 slices of
// the old interned form — rows are contiguous, a frontier expansion
// walks memory linearly, and the whole graph is two allocations.
//
// A delta-extended graph (see Extend) trades the flat layout for a
// per-row table: rows[x] is node x's arc list, aliasing the parent
// artifact's storage for every row the delta did not touch and owning
// fresh storage for the re-laid rows. row() dispatches on which form
// is present, so solvers never see the difference.
type csr struct {
	off  []int32 // len = nodes + 1 (flat form)
	arcs []int32
	rows [][]int32 // non-nil on a delta-extended graph; overrides off/arcs
	m    int       // arc count, maintained across both forms
}

// row returns node x's arc list. Ids at or past the node count — the
// bound query constant when it occurs in no relation — have no arcs.
func (c *csr) row(x int32) []int32 {
	if c.rows != nil {
		if int(x) >= len(c.rows) {
			return nil
		}
		return c.rows[x]
	}
	if int(x)+1 >= len(c.off) {
		return nil
	}
	return c.arcs[c.off[x]:c.off[x+1]]
}

// iarc is one deduplicated arc during compilation.
type iarc struct{ u, v int32 }

// buildCSR lays out arcs in CSR form over n nodes. rev swaps each
// arc's endpoints (the reverse graph). The counting sort is stable,
// so rows keep the relation's fact order like the old per-node
// append did.
func buildCSR(n int, arcs []iarc, rev bool) csr {
	off := make([]int32, n+1)
	src := func(a iarc) int32 {
		if rev {
			return a.v
		}
		return a.u
	}
	for _, a := range arcs {
		off[src(a)+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	flat := make([]int32, len(arcs))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, a := range arcs {
		s := src(a)
		d := a.v
		if rev {
			d = a.u
		}
		flat[cur[s]] = d
		cur[s]++
	}
	return csr{off: off, arcs: flat, m: len(flat)}
}

// Compiled is a query instance compiled once and shared read-only
// across queries: the interned symbol tables for the two node domains
// and the four adjacency graphs in CSR form. Only the bound constant
// of ?- P(a, Y) varies between queries, so everything here is
// source-independent; bind attaches a source in O(1).
//
// A Compiled is immutable after Compile returns and safe for any
// number of concurrent Solve calls.
type Compiled struct {
	// Generation is an optional caller-assigned tag identifying the
	// database version this artifact was compiled from. Compile leaves
	// it zero; the serving layer stamps it to pair the artifact with
	// its result-cache generation.
	Generation uint64

	lNames []string
	rNames []string
	lid    map[string]int32
	rid    map[string]int32
	// lidOv and ridOv are the delta overlays: symbols interned by
	// Extend since the last full Compile, as an immutable chain of
	// small per-generation maps. The base maps above are shared
	// read-only across a whole extend chain (concurrent queries on the
	// parent may be probing them), so a delta generation interns its
	// new constants into a fresh link instead of rehashing the base —
	// and instead of copying the accumulated overlay, which would make
	// a long append chain quadratic. nil on a cold-compiled artifact.
	lidOv *symOv
	ridOv *symOv

	lOut csr // G_L arcs: L-node -> L-nodes
	lIn  csr // reverse of lOut
	eOut csr // G_E arcs: L-node -> R-nodes
	rOut csr // descent arcs: rOut[c] = {b : (b, c) in R}

	// lg is the magic graph as a graph.Digraph, prebuilt so per-query
	// classification (method auto-selection) skips reconstruction.
	lg *graph.Digraph

	// lGen, eGen, and rGen tag each relation's adjacency with the
	// generation at which it last changed: an Extend whose delta leaves
	// a relation untouched aliases that relation's graphs wholesale and
	// carries the parent's tag forward. depth counts Extend steps since
	// the last full Compile (see DeltaDepth).
	lGen, eGen, rGen uint64
	depth            int
}

// Compile interns the three database relations into graph form once.
// L-nodes and R-nodes live in separate id spaces, as in the paper's
// query graph: the same constant occurring in L and in R yields two
// distinct nodes. Facts are deduplicated (relations are sets). The
// result is shared freely: Solve and its siblings bind a source to it
// without touching the tables.
func Compile(L, E, R []Pair) *Compiled {
	c := &Compiled{
		lid: make(map[string]int32, len(L)),
		rid: make(map[string]int32, len(R)),
	}
	internL := func(name string) int32 {
		if id, ok := c.lid[name]; ok {
			return id
		}
		id := int32(len(c.lNames))
		c.lid[name] = id
		c.lNames = append(c.lNames, name)
		return id
	}
	internR := func(name string) int32 {
		if id, ok := c.rid[name]; ok {
			return id
		}
		id := int32(len(c.rNames))
		c.rid[name] = id
		c.rNames = append(c.rNames, name)
		return id
	}
	dedupe := func(seen map[iarc]bool, u, v int32) bool {
		a := iarc{u, v}
		if seen[a] {
			return false
		}
		seen[a] = true
		return true
	}
	lArcs := make([]iarc, 0, len(L))
	lSeen := make(map[iarc]bool, len(L))
	for _, p := range L {
		u, v := internL(p.From), internL(p.To)
		if dedupe(lSeen, u, v) {
			lArcs = append(lArcs, iarc{u, v})
		}
	}
	eArcs := make([]iarc, 0, len(E))
	eSeen := make(map[iarc]bool, len(E))
	for _, p := range E {
		u, v := internL(p.From), internR(p.To)
		if dedupe(eSeen, u, v) {
			eArcs = append(eArcs, iarc{u, v})
		}
	}
	// Descent arcs are stored reversed up front: rOut[c] = {b : (b, c) in R}.
	rArcs := make([]iarc, 0, len(R))
	rSeen := make(map[iarc]bool, len(R))
	for _, p := range R {
		b, ch := internR(p.From), internR(p.To)
		if dedupe(rSeen, b, ch) {
			rArcs = append(rArcs, iarc{ch, b})
		}
	}
	nL, nR := len(c.lNames), len(c.rNames)
	c.lOut = buildCSR(nL, lArcs, false)
	c.lIn = buildCSR(nL, lArcs, true)
	c.eOut = buildCSR(nL, eArcs, false)
	c.rOut = buildCSR(nR, rArcs, false)
	c.lg = graph.NewDigraph(nL)
	for _, a := range lArcs {
		c.lg.AddArc(int(a.u), int(a.v))
	}
	return c
}

// NumL and NumR report the interned domain sizes (excluding any
// virtual source node a bind may add).
func (c *Compiled) NumL() int { return len(c.lNames) }

// NumR reports the R-domain size.
func (c *Compiled) NumR() int { return len(c.rNames) }

// Arcs reports the deduplicated arc counts of G_L, G_E, and the
// descent graph.
func (c *Compiled) Arcs() (l, e, r int) {
	return c.lOut.m, c.eOut.m, c.rOut.m
}

// symOv is one link of the overlay chain: the symbols one Extend
// generation interned, plus the previous generation's link. Links are
// immutable once their Extend returns, so siblings branch freely and
// in-flight queries on any ancestor stay safe — a name is interned in
// exactly one link (or the base), so there is no shadowing and walk
// order is a pure lookup-cost concern.
type symOv struct {
	prev *symOv
	m    map[string]int32
}

// lookupSym resolves name in a possibly-overlaid symbol table: the
// shared base map first (the common case, O(1)), then the overlay
// chain newest-first — symbols interned by recent deltas sit near the
// head, and a genuine miss costs one probe per link, bounded by the
// serving layer's chain-depth cap.
func lookupSym(base map[string]int32, overlay *symOv, name string) (int32, bool) {
	if id, ok := base[name]; ok {
		return id, true
	}
	for ov := overlay; ov != nil; ov = ov.prev {
		if id, ok := ov.m[name]; ok {
			return id, true
		}
	}
	return 0, false
}

// bind attaches a source constant to the compiled instance, producing
// the small per-run state every solver entry point evaluates with. A
// source that occurs in no relation becomes a virtual L-node one past
// the interned table — it has no arcs, exactly as if it had been
// interned fresh — so bind never mutates the shared artifact.
func (c *Compiled) bind(source string) *instance {
	in := &instance{c: c, srcName: source, nL: len(c.lNames), nR: len(c.rNames)}
	if id, ok := lookupSym(c.lid, c.lidOv, source); ok {
		in.src = id
	} else {
		in.src = int32(len(c.lNames))
		in.nL++
	}
	return in
}

// pairRows is the pooled scratch behind a run's P_M pair set: one
// denseSet row per L-node, the dominant per-query allocation once the
// graphs themselves are compiled. Rows go back to the pool reset but
// with their backing arrays intact, so a warm query reuses the
// previous run's capacity instead of growing from nil.
type pairRows struct {
	rows []denseSet
}

var pairRowsPool = sync.Pool{New: func() any { return new(pairRows) }}

// pooledPairSet returns a pairSet sized for this run from the pool.
// The caller releases it (once) when the derived pairs are consumed.
func (in *instance) pooledPairSet() *pairSet {
	pr := pairRowsPool.Get().(*pairRows)
	if cap(pr.rows) < in.nL {
		pr.rows = make([]denseSet, in.nL)
	} else {
		pr.rows = pr.rows[:in.nL]
	}
	return &pairSet{byX: pr.rows, pr: pr}
}

// release resets the pair set's rows and returns them to the pool.
// Safe to call on an unpooled or already-released set.
func (p *pairSet) release() {
	if p.pr == nil {
		return
	}
	for i := range p.pr.rows {
		p.pr.rows[i].reset()
	}
	pairRowsPool.Put(p.pr)
	p.pr = nil
	p.byX = nil
}
