module magiccounting

go 1.22
