package magiccounting

import (
	"errors"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	parent := []Pair{
		P("ann", "carl"), P("ben", "carl"),
		P("carl", "ed"), P("dora", "ed"),
	}
	q := SameGeneration(parent, "ann")
	res, err := q.SolveMagicCounting(Multiple, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	// dora is a child of ed and hence one generation above ann (a
	// grandchild of ed); only ben shares ann's generation.
	want := []string{"ann", "ben"}
	if len(res.Answers) != len(want) {
		t.Fatalf("answers = %v, want %v", res.Answers, want)
	}
	for i := range want {
		if res.Answers[i] != want[i] {
			t.Fatalf("answers = %v, want %v", res.Answers, want)
		}
	}
	if res.Stats.Retrievals == 0 {
		t.Fatal("stats should carry costs")
	}
}

func TestFacadeUnsafeError(t *testing.T) {
	q := SameGeneration([]Pair{P("a", "b"), P("b", "a")}, "a")
	if _, err := q.SolveCounting(); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("err = %v, want ErrUnsafe", err)
	}
	res, err := q.SolveMagicCounting(Recurring, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0] != "a" {
		t.Fatalf("answers = %v", res.Answers)
	}
}

func TestFacadeReducedSetInspection(t *testing.T) {
	q := SameGeneration([]Pair{P("a", "b"), P("b", "c"), P("a", "c")}, "a")
	rs, names, err := q.ReducedSetsFor(Multiple, Independent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	if err := CheckReducedSets(q, rs, Independent); err != nil {
		t.Fatal(err)
	}
	// c has distances 1 and 2: it must be the one RM (multiple) node.
	rmCount := 0
	for _, in := range rs.RM {
		if in {
			rmCount++
		}
	}
	if rmCount != 1 {
		t.Fatalf("RM count = %d, want 1 (node c is multiple)", rmCount)
	}
}

func TestFacadeParams(t *testing.T) {
	q := SameGeneration([]Pair{P("a", "b"), P("b", "c")}, "a")
	p := q.Params()
	if !p.Regular || p.Cyclic || p.NL != 3 {
		t.Fatalf("params = %+v", p)
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	strategies := map[Strategy]bool{Basic: true, Single: true, Multiple: true, Recurring: true}
	if len(strategies) != 4 {
		t.Fatal("strategy constants collide")
	}
	modes := map[Mode]bool{Independent: true, Integrated: true}
	if len(modes) != 2 {
		t.Fatal("mode constants collide")
	}
}
