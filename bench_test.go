// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark family per artifact. The number that
// reproduces the paper is the per-op "retrievals" metric (the paper's
// cost unit, tuple retrievals); wall-clock ns/op is reported for free.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single table, e.g. Table 1:
//
//	go test -bench=BenchmarkTab1
package magiccounting

import (
	"context"
	"fmt"
	"testing"

	"magiccounting/internal/core"
	"magiccounting/internal/datalog"
	"magiccounting/internal/engine"
	"magiccounting/internal/harness"
	"magiccounting/internal/relation"
	"magiccounting/internal/server"
	"magiccounting/internal/workload"
)

// benchMethod runs one method on one query inside a testing.B loop,
// reporting the tuple-retrieval cost as a custom metric.
func benchMethod(b *testing.B, name string, q core.Query) {
	def, ok := harness.MethodByName(name)
	if !ok {
		b.Fatalf("unknown method %s", name)
	}
	var retrievals int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := def.Run(q)
		if err != nil {
			b.Fatal(err)
		}
		retrievals = res.Stats.Retrievals
	}
	b.ReportMetric(float64(retrievals), "retrievals")
}

// --- Table 1: counting vs magic set, three regimes -----------------

func BenchmarkTab1(b *testing.B) {
	for _, regime := range []harness.Regime{harness.Regular, harness.Acyclic, harness.Cyclic} {
		for _, n := range []int{64, 256} {
			q := harness.RegimeWorkload(regime, n)
			for _, method := range []string{"counting", "magic"} {
				if regime == harness.Cyclic && method == "counting" {
					continue // the paper's "unsafe" cell
				}
				b.Run(fmt.Sprintf("%s/n=%d/%s", regime, n, method), func(b *testing.B) {
					benchMethod(b, method, q)
				})
			}
		}
	}
}

// --- Table 2: basic magic counting ---------------------------------

func BenchmarkTab2(b *testing.B) {
	for _, regime := range []harness.Regime{harness.Regular, harness.Acyclic, harness.Cyclic} {
		q := harness.RegimeWorkload(regime, 128)
		for _, method := range []string{"mc-basic-ind", "mc-basic-int"} {
			b.Run(fmt.Sprintf("%s/%s", regime, method), func(b *testing.B) {
				benchMethod(b, method, q)
			})
		}
	}
}

// --- Table 3: single magic counting on frontier graphs -------------

func BenchmarkTab3(b *testing.B) {
	for _, low := range []int{32, 128} {
		q := workload.SingleFrontier(low, 10, true)
		for _, method := range []string{"mc-basic-ind", "mc-single-ind", "mc-single-int"} {
			b.Run(fmt.Sprintf("low=%d/%s", low, method), func(b *testing.B) {
				benchMethod(b, method, q)
			})
		}
	}
}

// --- Table 4: multiple magic counting on comb graphs ---------------

func BenchmarkTab4(b *testing.B) {
	for _, spine := range []int{32, 128} {
		q := workload.Comb(spine)
		for _, method := range []string{"mc-single-ind", "mc-single-int", "mc-multiple-ind", "mc-multiple-int"} {
			b.Run(fmt.Sprintf("spine=%d/%s", spine, method), func(b *testing.B) {
				benchMethod(b, method, q)
			})
		}
	}
}

// --- Table 5: recurring magic counting on cycle-tail graphs --------

func BenchmarkTab5(b *testing.B) {
	for _, spine := range []int{32, 128} {
		q := workload.CycleTail(spine, 6)
		for _, method := range []string{"mc-multiple-ind", "mc-multiple-int",
			"mc-recurring-ind", "mc-recurring-int", "mc-recurring-scc"} {
			b.Run(fmt.Sprintf("spine=%d/%s", spine, method), func(b *testing.B) {
				benchMethod(b, method, q)
			})
		}
	}
}

// --- Figure 1: the running example in its three regimes ------------

func BenchmarkFig1(b *testing.B) {
	variants := []struct {
		name string
		q    core.Query
	}{
		{"regular", workload.PaperFig1()},
		{"acyclic", workload.PaperFig1Acyclic()},
		{"cyclic", workload.PaperFig1Cyclic()},
	}
	for _, v := range variants {
		for _, method := range []string{"magic", "mc-recurring-int"} {
			b.Run(v.name+"/"+method, func(b *testing.B) {
				benchMethod(b, method, v.q)
			})
		}
	}
}

// --- Figure 2: Step 1 reduced-set construction per strategy --------

func BenchmarkFig2(b *testing.B) {
	q := workload.PaperFig2()
	for _, s := range []core.Strategy{core.Basic, core.Single, core.Multiple, core.Recurring} {
		b.Run("step1/"+s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := q.ReducedSetsFor(s, core.Independent, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 3: the full efficiency hierarchy -----------------------

func BenchmarkFig3(b *testing.B) {
	methods := []string{"counting", "magic",
		"mc-basic-ind", "mc-basic-int", "mc-single-ind", "mc-single-int",
		"mc-multiple-ind", "mc-multiple-int", "mc-recurring-ind", "mc-recurring-int"}
	for _, regime := range []harness.Regime{harness.Regular, harness.Acyclic, harness.Cyclic} {
		q := harness.RegimeWorkload(regime, 128)
		for _, method := range methods {
			if regime == harness.Cyclic && method == "counting" {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", regime, method), func(b *testing.B) {
				benchMethod(b, method, q)
			})
		}
	}
}

// --- Ablations ------------------------------------------------------

// BenchmarkAblationRecurringStep1 compares the paper's §9 bounded
// fixpoint against the Tarjan-SCC variant it sketches, on a chord
// cycle where the naive variant's Θ(nL·mL) genuinely bites (every
// node has Θ(n) indices below the 2K−1 bound).
func BenchmarkAblationRecurringStep1(b *testing.B) {
	q := workload.ChordCycle(256)
	b.Run("naive-2k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := q.ReducedSetsFor(core.Recurring, core.Integrated, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tarjan-scc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := q.ReducedSetsFor(core.Recurring, core.Integrated, core.Options{SCCStep1: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtCyclicCounting shows the generalized-counting extension
// (the [MPS]/[SZ2] footnote) losing to both the magic set method and
// the magic counting methods on cyclic data — the footnote's claim.
func BenchmarkExtCyclicCounting(b *testing.B) {
	q := harness.RegimeWorkload(harness.Cyclic, 128)
	for _, method := range []string{"counting-cyclic", "magic", "mc-recurring-int"} {
		b.Run(method, func(b *testing.B) {
			benchMethod(b, method, q)
		})
	}
}

// BenchmarkAblationSeminaive compares naive and seminaive generic-
// engine evaluation of the same Datalog program (the transitive
// closure of a chain), isolating the differential-evaluation design
// choice the whole fixpoint layer is built on.
func BenchmarkAblationSeminaive(b *testing.B) {
	var src string
	src += "tc(X, Y) :- e(X, Y).\n"
	src += "tc(X, Y) :- e(X, Z), tc(Z, Y).\n"
	for i := 0; i < 48; i++ {
		src += fmt.Sprintf("e(n%d, n%d).\n", i, i+1)
	}
	prog := datalog.MustParse(src)
	for _, naive := range []bool{true, false} {
		name := "seminaive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			var retrievals int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store := relation.NewStore()
				if _, err := engine.Eval(prog, store, engine.Options{Naive: naive}); err != nil {
					b.Fatal(err)
				}
				retrievals = store.Meter().Retrievals()
			}
			b.ReportMetric(float64(retrievals), "retrievals")
		})
	}
}

// BenchmarkNaiveBaseline pins the cost of evaluating the original
// program with no binding propagation at all.
func BenchmarkNaiveBaseline(b *testing.B) {
	for _, regime := range []harness.Regime{harness.Regular, harness.Cyclic} {
		q := harness.RegimeWorkload(regime, 64)
		b.Run(string(regime), func(b *testing.B) {
			benchMethod(b, "naive", q)
		})
	}
}

// --- Parallel frontier evaluation ----------------------------------

// BenchmarkParallelSolve measures the core solvers with and without
// the frontier worker pool on a wide workload (a branching-4 tree:
// frontiers up to 4^6 nodes). Results are identical by construction —
// the benchmark exists to keep the speedup visible and regressions
// loud.
func BenchmarkParallelSolve(b *testing.B) {
	q := workload.Tree(4, 7)
	configs := []struct {
		name string
		opts core.Options
	}{
		{"sequential", core.Options{}},
		{"parallel", core.Options{Workers: -1}},
	}
	for _, cfg := range configs {
		b.Run("tree/counting/"+cfg.name, func(b *testing.B) {
			var retrievals int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := q.SolveCountingOpts(cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				retrievals = res.Stats.Retrievals
			}
			b.ReportMetric(float64(retrievals), "retrievals")
		})
		b.Run("tree/mc-recurring-int/"+cfg.name, func(b *testing.B) {
			var retrievals int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := q.SolveMagicCountingOpts(core.Recurring, core.Integrated, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				retrievals = res.Stats.Retrievals
			}
			b.ReportMetric(float64(retrievals), "retrievals")
		})
	}
}

// BenchmarkEngineParallel measures seminaive evaluation of a
// transitive closure over the union of four edge relations — four
// independent recursive rules per delta round, the shape the engine's
// conflict gate parallelizes.
func BenchmarkEngineParallel(b *testing.B) {
	var src string
	const n = 320
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("e%d(n%d, n%d).\n", i%4+1, i, i+1)
		if i%7 == 0 && i+3 <= n {
			src += fmt.Sprintf("e%d(n%d, n%d).\n", (i+2)%4+1, i, i+3)
		}
	}
	for k := 1; k <= 4; k++ {
		src += fmt.Sprintf("path(X, Y) :- e%d(X, Y).\n", k)
		src += fmt.Sprintf("path(X, Y) :- path(X, Z), e%d(Z, Y).\n", k)
	}
	src += "?- path(n0, Y).\n"
	prog := datalog.MustParse(src)
	for _, workers := range []int{0, -1} {
		name := "sequential"
		if workers != 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			var retrievals int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store := relation.NewStore()
				if _, err := engine.Eval(prog, store, engine.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
				retrievals = store.Meter().Retrievals()
			}
			b.ReportMetric(float64(retrievals), "retrievals")
		})
	}
}

// BenchmarkServerQuery measures the query service end to end: the
// cache-hit fast path and the full solve path (rotating sources defeat
// the cache).
func BenchmarkServerQuery(b *testing.B) {
	q := workload.Tree(2, 10)
	svc := server.New(server.Config{})
	if _, err := svc.AppendFacts(server.FactsRequest{L: q.L, E: q.E, R: q.R}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("hit", func(b *testing.B) {
		req := server.QueryRequest{Source: "t0", Strategy: "recurring", Mode: "integrated"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := server.QueryRequest{Source: fmt.Sprintf("t%d", i%1023), Strategy: "recurring", Mode: "integrated"}
			if _, err := svc.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
